//! Sparse revised two-phase simplex (primal and dual).
//!
//! The default LP engine ([`Engine::SparseRevised`](crate::Engine)).
//! Operates on the LP relaxation of a [`Model`](crate::Model) with
//! variables shifted to `x' = x − lo ≥ 0`; finite upper bounds become
//! explicit rows. Phase 1 minimizes the sum of artificial variables to find
//! a basic feasible solution; phase 2 optimizes the real objective.
//!
//! Unlike the legacy dense tableau (kept in [`crate::dense`] as the
//! measured baseline and equivalence oracle), this engine never
//! materializes `B⁻¹A`:
//!
//! * the constraint matrix is stored once in **compressed sparse column**
//!   (CSC) form — buffer-placement rows have a handful of nonzeros each;
//! * the basis inverse is a **product-form eta file**: each pivot appends
//!   one eta vector, and `B⁻¹x` (FTRAN) / `yᵀB⁻¹` (BTRAN) are applied
//!   eta-by-eta in `O(eta nonzeros)`;
//! * the eta file is rebuilt from the current basis (**refactorization**)
//!   adaptively, when its nonzeros have grown well past the size of a
//!   fresh factorization (with a [`REFACTOR_PIVOT_CAP`] backstop),
//!   bounding both FTRAN/BTRAN cost and accumulated floating-point drift;
//! * a solve can be **warm-started** from a parent basis (branch & bound
//!   hands each child the basis of the node that spawned it): if the basis
//!   is still primal feasible under the child's bounds, phase 1 is skipped
//!   entirely; if it is primal infeasible but still *dual* feasible — the
//!   typical state after a bound change or an appended cut row — the
//!   **dual simplex** ([`Rsm::dual_optimize`]) walks it back to
//!   feasibility without any phase-1 work.
//!
//! Pricing policy is unchanged from the dense engine: Dantzig's rule (most
//! positive reduced cost, lowest index on ties) with a fall-back to Bland's
//! provably non-cycling rule after [`DEGENERATE_STREAK`] consecutive
//! degenerate pivots. Reduced costs are recomputed exactly every iteration
//! (one BTRAN + one sparse pass over the columns), so the pivot sequence
//! matches the dense engine's wherever floating-point round-off agrees;
//! where it does not, the result is still a deterministic pure function of
//! the model, which is all the pivot work budget
//! ([`Model::set_work_limit`](crate::Model::set_work_limit)) requires.

use crate::model::{Cmp, Model, Sense, SolveError};

pub(crate) const EPS: f64 = 1e-9;

/// Consecutive degenerate (zero-improvement) pivots tolerated under
/// Dantzig pricing before switching to Bland's anti-cycling rule.
const DEGENERATE_STREAK: u32 = 50;

/// Floor for the stall valve: consecutive degenerate pivots tolerated
/// before a phase gives up as truncated. Bland's rule cannot cycle, but
/// on heavily degenerate vertices (cut-augmented placement LPs) its exit
/// walk can run to the full iteration valve; past `max(STALL_FLOOR,
/// 2·(rows + priced columns))` zero-progress pivots the walk is abandoned
/// instead, which keeps one sick LP from draining the caller's entire
/// deterministic work budget. Purely a function of the model, so the
/// pivot sequence stays machine-independent.
const STALL_FLOOR: u32 = 2_048;

/// Hard iteration valve per simplex phase.
pub(crate) const MAX_SIMPLEX_ITERS: u64 = 2_000_000;

/// Pivot-count backstop of the adaptive refactorization trigger: even if
/// the eta file's nonzero growth never crosses the adaptive threshold
/// (pathologically sparse updates), the product form is collapsed after
/// this many pivots to wash out accumulated round-off.
const REFACTOR_PIVOT_CAP: usize = 128;

/// Floor of the adaptive refactorization threshold: the eta file must add
/// at least this many nonzeros past the fresh-factor size before a rebuild
/// can pay for itself on small systems.
const REFACTOR_GROWTH_FLOOR: usize = 256;

/// Result of an LP solve: variable values (in the model's original space),
/// the objective value, and the simplex pivots spent (the deterministic
/// work measure behind [`Model::set_work_limit`](crate::Model::set_work_limit)).
#[derive(Debug, Clone)]
pub(crate) struct LpSolution {
    pub values: Vec<f64>,
    pub objective: f64,
    pub pivots: u64,
    /// Subset of `pivots` performed by the dual simplex
    /// ([`Rsm::dual_optimize`]); dense engine and cold starts report 0.
    pub dual_pivots: u64,
    /// Basis re-inversions performed (sparse engine only; dense is 0).
    pub refactors: u64,
    /// The phase-2 iteration valve fired: `values` is a primal-feasible
    /// basic solution but `objective` may be below the true LP optimum, so
    /// it must not be used as a dual bound.
    pub truncated: bool,
    /// Final basis, for warm-starting child nodes (sparse engine only).
    pub basis: Option<WarmBasis>,
    /// A caller-supplied warm basis was adopted (phase 1 skipped or run
    /// warm over appended rows only).
    pub warmed: bool,
}

/// A basis snapshot handed from one LP solve to a later one: between a
/// branch-and-bound node and its children, across root cut rounds, or
/// across flow iterations via [`crate::warm::MilpWarmStore`].
///
/// Adopted by a later solve only when `rows`/`cols` are no larger than the
/// new system's, every basic column is a real (structural or slack) column
/// of the old system, and the candidate basis — extended with natural
/// basis entries for any appended rows — refactors to a primal-feasible
/// point. All checks are pure functions of the model, so adoption is
/// deterministic; a basis from a mismatched model simply fails them and
/// the solve cold-starts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WarmBasis {
    /// Row count of the system the basis was taken from.
    pub rows: usize,
    /// Column count before artificials (structural + slack).
    pub cols: usize,
    /// Basic column per basis position.
    pub basis: Vec<usize>,
}

/// Extra bound constraints layered on top of a model by branch & bound.
#[derive(Debug, Clone, Default)]
pub(crate) struct BoundOverrides {
    /// `(var index, new lo, new hi)` triples; later entries win.
    pub entries: Vec<(usize, f64, f64)>,
}

impl BoundOverrides {
    pub fn bounds_for(&self, model: &Model, var: usize) -> (f64, f64) {
        let mut lo = model.vars[var].lo;
        let mut hi = model.vars[var].hi;
        for &(v, l, h) in &self.entries {
            if v == var {
                lo = lo.max(l);
                hi = hi.min(h);
            }
        }
        (lo, hi)
    }
}

/// One row of the shifted system (shared by both engines).
pub(crate) struct PreparedRow {
    pub coeffs: Vec<(usize, f64)>,
    pub op: Cmp,
    pub rhs: f64,
}

/// The LP relaxation in shifted form: `x' = x − lo ≥ 0`, finite upper
/// bounds as explicit `≤` rows, objective sign-normalized to maximize.
pub(crate) struct Prepared {
    pub n: usize,
    pub lo: Vec<f64>,
    pub rows: Vec<PreparedRow>,
    pub obj: Vec<f64>,
    pub obj_shift: f64,
    pub sign: f64,
}

/// Builds the shifted row system both engines solve. Kept in one place so
/// the dense baseline and the sparse engine agree row-for-row.
pub(crate) fn prepare(model: &Model, overrides: &BoundOverrides) -> Result<Prepared, SolveError> {
    let n = model.vars.len();
    let mut lo = vec![0.0f64; n];
    let mut hi = vec![f64::INFINITY; n];
    for v in 0..n {
        let (l, h) = overrides.bounds_for(model, v);
        if l > h + EPS {
            return Err(SolveError::Infeasible);
        }
        lo[v] = l;
        hi[v] = h;
    }

    // Rows: one row per finite upper bound first, then the model
    // constraints (rhs adjusted by lower-bound shift). Upper-bound rows
    // leading means a constraint appended to the model — a root cutting
    // plane — extends the row system strictly at the end, leaving every
    // existing structural and slack column index intact; that stability is
    // what lets the warm-basis adoption below extend a pre-cut basis
    // instead of cold-starting every cut round.
    let mut rows: Vec<PreparedRow> = Vec::with_capacity(model.constraints.len() + n);
    for v in 0..n {
        if hi[v].is_finite() {
            rows.push(PreparedRow {
                coeffs: vec![(v, 1.0)],
                op: Cmp::Le,
                rhs: hi[v] - lo[v],
            });
        }
    }
    for c in &model.constraints {
        let mut shift = 0.0;
        for &(v, a) in &c.terms {
            shift += a * lo[v.index()];
        }
        rows.push(PreparedRow {
            coeffs: c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
            op: c.op,
            rhs: c.rhs - shift,
        });
    }

    // Objective in shifted space (maximize internally).
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj: Vec<f64> = model.vars.iter().map(|v| sign * v.obj).collect();
    let obj_shift: f64 = model
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| sign * v.obj * lo[i])
        .sum();

    Ok(Prepared {
        n,
        lo,
        rows,
        obj,
        obj_shift,
        sign,
    })
}

// ---------------------------------------------------------------------------
// Compressed sparse column storage
// ---------------------------------------------------------------------------

/// The augmented constraint matrix `[A | S | I_art]` in CSC form.
struct Csc {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    val: Vec<f64>,
}

impl Csc {
    fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        self.row_idx[s..e]
            .iter()
            .copied()
            .zip(self.val[s..e].iter().copied())
    }

    /// Sparse dot of column `j` with a dense vector.
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        let mut acc = 0.0;
        for (ri, v) in self.row_idx[s..e].iter().zip(&self.val[s..e]) {
            acc += v * y[*ri];
        }
        acc
    }

    /// Scatters column `j` into a dense scratch vector (assumed zeroed).
    fn scatter(&self, j: usize, out: &mut [f64]) {
        for (i, v) in self.col(j) {
            out[i] = v;
        }
    }

    /// Number of stored entries in column `j`.
    fn col_len(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }
}

// ---------------------------------------------------------------------------
// Product-form eta file
// ---------------------------------------------------------------------------

/// Entries below this magnitude are dropped from eta vectors: cascading
/// FTRANs breed tiny fill that costs time without carrying information.
/// The adaptive refactorization schedule (growth trigger plus the
/// [`REFACTOR_PIVOT_CAP`] backstop) re-derives the representation from
/// `A`, bounding the accumulated truncation.
const ETA_DROP_TOL: f64 = 1e-12;

/// Product-form eta file in flat structure-of-arrays layout.
///
/// Eta `k` is the elementary transformation that is identity except
/// column `r[k]`, holding the FTRAN'd entering column (pivot element
/// `pivot[k]` separated; off-pivot nonzeros `(idx, val)` in the shared
/// pools delimited by `ptr[k]..ptr[k+1]`, stored in ascending row order).
/// One pool for the whole file — instead of a heap `Vec` per eta — keeps
/// FTRAN/BTRAN/refactorization on contiguous memory and spares one
/// allocation per pivot; traversal order is unchanged, so the arithmetic
/// is bit-for-bit that of the boxed-per-eta layout.
struct EtaFile {
    r: Vec<usize>,
    pivot: Vec<f64>,
    /// `ptr[k]..ptr[k+1]` delimits eta `k`'s entries; `ptr[0] == 0`.
    ptr: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl EtaFile {
    fn new() -> Self {
        EtaFile {
            r: Vec::new(),
            pivot: Vec::new(),
            ptr: vec![0],
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.r.len()
    }

    /// Appends one eta from a dense FTRAN'd column `w` with pivot row `r`
    /// (entries `i ≠ r` above [`ETA_DROP_TOL`], ascending `i`).
    fn push_dense(&mut self, r: usize, w: &[f64]) {
        let start = self.idx.len();
        for (i, &v) in w.iter().enumerate() {
            if i != r && v.abs() > ETA_DROP_TOL {
                self.idx.push(i);
                self.val.push(v);
            }
        }
        self.seal(r, w[r], start);
    }

    /// Appends one eta from an explicit nonzero list (refactorization path;
    /// the caller supplies entries in ascending row order).
    fn push(&mut self, r: usize, pivot: f64, nz: impl Iterator<Item = (usize, f64)>) {
        let start = self.idx.len();
        for (i, v) in nz {
            self.idx.push(i);
            self.val.push(v);
        }
        self.seal(r, pivot, start);
    }

    /// Finishes an eta whose entries were appended starting at pool offset
    /// `start` — unless it is the identity (unit pivot, no off-pivot
    /// entries), which FTRAN/BTRAN apply as a bitwise no-op (`v / 1.0 == v`
    /// for every `v`): storing those — slack columns pivoting on their own
    /// untouched row, the bulk of a refactorization on these models — would
    /// only add traversal cost to every later application of the file.
    fn seal(&mut self, r: usize, pivot: f64, start: usize) {
        if self.idx.len() == start && pivot == 1.0 {
            return;
        }
        self.r.push(r);
        self.pivot.push(pivot);
        self.ptr.push(self.idx.len());
    }

    /// FTRAN: `x ← B⁻¹x`, applying the eta file left to right.
    fn ftran(&self, x: &mut [f64]) {
        for k in 0..self.len() {
            let r = self.r[k];
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let t = xr / self.pivot[k];
            x[r] = t;
            let (s, e) = (self.ptr[k], self.ptr[k + 1]);
            for (i, w) in self.idx[s..e].iter().zip(&self.val[s..e]) {
                x[*i] -= w * t;
            }
        }
    }

    /// [`Self::ftran`] recording every scratch entry that turns nonzero in
    /// `touched` (refactorization's fill tracking).
    fn ftran_tracking(&self, x: &mut [f64], touched: &mut Vec<usize>) {
        for k in 0..self.len() {
            let r = self.r[k];
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let t = xr / self.pivot[k];
            x[r] = t;
            let (s, e) = (self.ptr[k], self.ptr[k + 1]);
            for (i, w) in self.idx[s..e].iter().zip(&self.val[s..e]) {
                if x[*i] == 0.0 {
                    touched.push(*i);
                }
                x[*i] -= w * t;
            }
        }
    }

    /// BTRAN: `y ← (B⁻¹)ᵀy`, applying the eta file right to left, transposed.
    fn btran(&self, y: &mut [f64]) {
        for k in (0..self.len()).rev() {
            let r = self.r[k];
            let mut v = y[r];
            let (s, e) = (self.ptr[k], self.ptr[k + 1]);
            for (i, w) in self.idx[s..e].iter().zip(&self.val[s..e]) {
                v -= w * y[*i];
            }
            // A zero accumulator stays zero under the pivot scale; skipping
            // the division only normalizes the zero's sign, which no
            // consumer of a BTRAN'd vector can observe (it feeds reduced-
            // cost comparisons and products, where ±0 behave identically).
            if v != 0.0 {
                y[r] = v / self.pivot[k];
            } else if y[r] != 0.0 {
                y[r] = 0.0;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The revised simplex core
// ---------------------------------------------------------------------------

struct Rsm<'a> {
    a: &'a Csc,
    /// Right-hand side (after row flips).
    b0: Vec<f64>,
    /// Columns before artificials (structural + slack).
    n_real: usize,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    etas: EtaFile,
    /// Pivots applied since the last successful refactorization
    /// ([`REFACTOR_PIVOT_CAP`] backstop of the adaptive trigger).
    update_pivots: usize,
    /// Eta-file nonzeros right after the last successful refactorization;
    /// the adaptive trigger fires on growth past this baseline.
    factor_nnz: usize,
    /// Current basic values `B⁻¹b`, indexed by basis position.
    xb: Vec<f64>,
    pivots: u64,
    dual_pivots: u64,
    refactors: u64,
}

impl<'a> Rsm<'a> {
    fn new(a: &'a Csc, b0: Vec<f64>, n_real: usize, basis: Vec<usize>) -> Self {
        let mut in_basis = vec![false; a.ncols()];
        for &c in &basis {
            in_basis[c] = true;
        }
        let xb = b0.clone();
        Rsm {
            a,
            b0,
            n_real,
            basis,
            in_basis,
            etas: EtaFile::new(),
            update_pivots: 0,
            factor_nnz: 0,
            xb,
            pivots: 0,
            dual_pivots: 0,
            refactors: 0,
        }
    }

    fn m(&self) -> usize {
        self.b0.len()
    }

    fn objective(&self, c: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&col, &x)| c[col] * x)
            .sum()
    }

    /// Rebuilds the eta file from the current basis columns (greedy
    /// partial-pivoting re-inversion). Basis positions may be relabeled;
    /// `xb` is recomputed from the fresh representation. Returns `false`
    /// (leaving the old file untouched) if the basis is numerically
    /// singular.
    fn refactor(&mut self) -> bool {
        let m = self.m();
        let mut fresh = EtaFile::new();
        fresh.r.reserve(m);
        fresh.pivot.reserve(m);
        fresh.ptr.reserve(m);
        let mut pivoted = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        let mut w = vec![0.0f64; m];
        // Eliminate sparse columns first (slacks and artificials are unit
        // columns and cause zero fill-in); ties break on the column index,
        // keeping the order — and hence the eta file — deterministic. This
        // static Markowitz-style ordering keeps the factor etas near the
        // sparsity of A instead of densifying the whole file.
        let mut order: Vec<usize> = self.basis.clone();
        order.sort_by_key(|&col| (self.a.col_len(col), col));
        // Track which scratch entries each column touches so the reset,
        // pivot search, and eta construction all cost O(fill), not O(m):
        // with mostly-singleton basis columns the whole rebuild stays near
        // the sparsity of A.
        let mut touched: Vec<usize> = Vec::with_capacity(64);
        for col in order {
            for (i, v) in self.a.col(col) {
                if w[i] == 0.0 {
                    touched.push(i);
                }
                w[i] = v;
            }
            fresh.ftran_tracking(&mut w, &mut touched);
            touched.sort_unstable();
            touched.dedup();
            // Unpivoted row with the largest magnitude (lowest index tie).
            let mut best: Option<usize> = None;
            let mut best_abs = EPS;
            for &i in &touched {
                if !pivoted[i] && w[i].abs() > best_abs {
                    best_abs = w[i].abs();
                    best = Some(i);
                }
            }
            let Some(r) = best else {
                for &i in &touched {
                    w[i] = 0.0;
                }
                return false;
            };
            pivoted[r] = true;
            new_basis[r] = col;
            fresh.push(
                r,
                w[r],
                touched
                    .iter()
                    .filter(|&&i| i != r && w[i].abs() > ETA_DROP_TOL)
                    .map(|&i| (i, w[i])),
            );
            for &i in &touched {
                w[i] = 0.0;
            }
            touched.clear();
        }
        self.basis = new_basis;
        self.update_pivots = 0;
        self.etas = fresh;
        self.factor_nnz = self.etas.idx.len();
        self.refactors += 1;
        self.xb.copy_from_slice(&self.b0);
        self.etas.ftran(&mut self.xb);
        true
    }

    /// Applies one pivot: entering column `q` (with FTRAN'd column `w`)
    /// replaces the variable basic at position `r`.
    fn pivot(&mut self, r: usize, q: usize, w: &[f64]) {
        let t = self.xb[r] / w[r];
        for (i, (x, &wi)) in self.xb.iter_mut().zip(w).enumerate() {
            if i != r {
                *x -= wi * t;
            }
        }
        self.xb[r] = t;
        self.in_basis[self.basis[r]] = false;
        self.in_basis[q] = true;
        self.basis[r] = q;
        self.etas.push_dense(r, w);
        self.pivots += 1;
        self.update_pivots += 1;
        // Adaptive refactorization: FTRAN/BTRAN cost scales with the eta
        // file's nonzeros while a rebuild costs roughly one fresh factor,
        // so the file is collapsed once its *growth* since the last
        // factorization exceeds the factor's own size (plus an 8·m row
        // allowance and a small-system floor) — sparse update streams run
        // hundreds of pivots per rebuild, dense ones refactor early. Both
        // triggers are pure functions of the pivot sequence, so the
        // schedule stays bit-identical across machines and thread counts.
        let growth = self.etas.idx.len().saturating_sub(self.factor_nnz);
        let threshold = (self.factor_nnz / 2 + 2 * self.m()).max(REFACTOR_GROWTH_FLOOR);
        if growth > threshold || self.update_pivots >= REFACTOR_PIVOT_CAP {
            // A singular refactorization (numerically degenerate basis)
            // keeps the longer but still-valid eta file and retries on
            // the next pivot (the counter only resets on success).
            self.refactor();
        }
    }

    /// Runs primal simplex (maximization) pricing columns `< price_cols`;
    /// returns the objective and whether the iteration valve fired before
    /// optimality.
    fn optimize(
        &mut self,
        c: &[f64],
        price_cols: usize,
        max_iters: u64,
    ) -> Result<(f64, bool), SolveError> {
        let m = self.m();
        let mut y = vec![0.0f64; m];
        let mut w = vec![0.0f64; m];
        let mut iterations = 0u64;
        // Dantzig pricing cycles on degenerate vertices (Beale's example);
        // after DEGENERATE_STREAK consecutive zero-improvement pivots
        // switch to Bland's rule, which cannot cycle, until the objective
        // strictly moves.
        let mut degenerate_streak = 0u32;
        let stall_limit = STALL_FLOOR.max(2 * (m + price_cols).min(u32::MAX as usize / 2) as u32);
        loop {
            iterations += 1;
            if iterations > max_iters || degenerate_streak >= stall_limit {
                return Ok((self.objective(c), true));
            }
            // BTRAN: y = c_B B⁻¹, then reduced costs via one sparse pass.
            y.iter_mut().for_each(|v| *v = 0.0);
            for (pos, &col) in self.basis.iter().enumerate() {
                if c[col] != 0.0 {
                    y[pos] = c[col];
                }
            }
            self.etas.btran(&mut y);
            let entering = if degenerate_streak >= DEGENERATE_STREAK {
                // Bland: first improving column.
                (0..price_cols).find(|&j| !self.in_basis[j] && c[j] - self.a.col_dot(j, &y) > 1e-7)
            } else {
                // Dantzig: most positive reduced cost, lowest index on ties.
                let mut best_j = None;
                let mut best_r = 1e-7;
                for (j, &cj) in c.iter().enumerate().take(price_cols) {
                    if self.in_basis[j] {
                        continue;
                    }
                    let r = cj - self.a.col_dot(j, &y);
                    if r > best_r {
                        best_r = r;
                        best_j = Some(j);
                    }
                }
                best_j
            };
            let Some(q) = entering else {
                return Ok((self.objective(c), false));
            };
            // FTRAN the entering column, then the ratio test (smallest
            // basis index tie-break, as in Bland's rule).
            w.iter_mut().for_each(|v| *v = 0.0);
            self.a.scatter(q, &mut w);
            self.etas.ftran(&mut w);
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for (i, &wi) in w.iter().enumerate() {
                if wi > EPS {
                    let ratio = self.xb[i] / wi;
                    if ratio < best - EPS
                        || (ratio < best + EPS
                            && leave
                                .map(|l| self.basis[i] < self.basis[l])
                                .unwrap_or(false))
                    {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return Err(SolveError::Unbounded);
            };
            if best <= EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(r, q, &w);
        }
    }

    /// Runs dual simplex (maximization) from a dual-feasible basis: every
    /// nonbasic priced column has a nonpositive reduced cost and keeps it;
    /// primal infeasibilities (negative basic values) are driven out row by
    /// row until the point is feasible — and therefore optimal. Returns the
    /// objective and whether the iteration valve fired (in which case the
    /// basis may still be primal infeasible and must not feed phase 2).
    ///
    /// Leaving-row choice is dual Dantzig — the most negative basic value,
    /// lowest row index on ties — switching to the smallest basic column
    /// label (Bland-style) after [`DEGENERATE_STREAK`] consecutive
    /// zero-improvement steps, mirroring the primal engine's anti-cycling
    /// valve; the same degenerate-streak stall valve bounds the walk.
    /// The entering column minimizes the dual ratio `d_j / α_j` over
    /// nonbasic columns with `α_j = (B⁻¹A_j)_r < 0` (lowest index on
    /// exact ties), which is what keeps every reduced cost nonpositive.
    ///
    /// Bound-flipping note: in this shifted standard form every nonbasic
    /// variable sits at its lower bound 0 and finite upper bounds are
    /// explicit rows (see [`prepare`]), so there are no boxed nonbasics to
    /// flip through and the bound-flipping (long-step) dual ratio test
    /// degenerates to exactly this textbook min-ratio rule.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when a leaving row has no eligible
    /// entering column: the row proves `x_{B(r)} ≤ xb[r] < 0` for every
    /// nonnegative completion, a valid primal-infeasibility certificate
    /// (dual unboundedness).
    fn dual_optimize(
        &mut self,
        c: &[f64],
        price_cols: usize,
        max_iters: u64,
    ) -> Result<(f64, bool), SolveError> {
        let m = self.m();
        let mut y = vec![0.0f64; m];
        let mut rho = vec![0.0f64; m];
        let mut w = vec![0.0f64; m];
        let mut iterations = 0u64;
        let mut degenerate_streak = 0u32;
        let stall_limit = STALL_FLOOR.max(2 * (m + price_cols).min(u32::MAX as usize / 2) as u32);
        loop {
            iterations += 1;
            if iterations > max_iters || degenerate_streak >= stall_limit {
                return Ok((self.objective(c), true));
            }
            let leaving = if degenerate_streak >= DEGENERATE_STREAK {
                // Anti-cycling: smallest basic column label among the
                // infeasible rows.
                let mut pick: Option<usize> = None;
                for (i, &x) in self.xb.iter().enumerate() {
                    if x < -1e-7 && pick.map(|p| self.basis[i] < self.basis[p]).unwrap_or(true) {
                        pick = Some(i);
                    }
                }
                pick
            } else {
                // Dual Dantzig: most negative basic value, lowest index on
                // ties (strict `<` over an ascending scan).
                let mut pick: Option<usize> = None;
                let mut most = -1e-7;
                for (i, &x) in self.xb.iter().enumerate() {
                    if x < most {
                        most = x;
                        pick = Some(i);
                    }
                }
                pick
            };
            let Some(r) = leaving else {
                // Primal feasible — with dual feasibility maintained
                // throughout, this is the optimum.
                return Ok((self.objective(c), false));
            };
            // BTRAN the unit row: ρ = eᵣᵀB⁻¹ gives the pivot row of the
            // tableau as α_j = ρ·A_j; a second BTRAN prices the basic
            // costs for the reduced costs d_j = c_j − y·A_j.
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            self.etas.btran(&mut rho);
            y.iter_mut().for_each(|v| *v = 0.0);
            for (pos, &col) in self.basis.iter().enumerate() {
                if c[col] != 0.0 {
                    y[pos] = c[col];
                }
            }
            self.etas.btran(&mut y);
            let mut entering: Option<usize> = None;
            let mut best = f64::INFINITY;
            for (j, &cj) in c.iter().enumerate().take(price_cols) {
                if self.in_basis[j] {
                    continue;
                }
                let alpha = self.a.col_dot(j, &rho);
                if alpha < -EPS {
                    let ratio = (cj - self.a.col_dot(j, &y)) / alpha;
                    if ratio < best {
                        best = ratio;
                        entering = Some(j);
                    }
                }
            }
            let Some(q) = entering else {
                return Err(SolveError::Infeasible);
            };
            w.iter_mut().for_each(|v| *v = 0.0);
            self.a.scatter(q, &mut w);
            self.etas.ftran(&mut w);
            if w[r] >= -EPS {
                // FTRAN disagrees with the BTRAN row on the pivot element
                // (numerical drift): abandon the walk as truncated rather
                // than divide by a vanishing pivot. Deterministic — the
                // drift is a pure function of the pivot sequence.
                return Ok((self.objective(c), true));
            }
            // Objective moves by d_q · (xb[r]/α_q) ≤ 0; a (near-)zero
            // step is a degenerate dual pivot.
            let step = (c[q] - self.a.col_dot(q, &y)) * (self.xb[r] / w[r]);
            if step.abs() <= EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(r, q, &w);
            self.dual_pivots += 1;
        }
    }

    /// Drives artificial variables out of the basis after phase 1 using the
    /// sparse row structure: for each position still basic in an
    /// artificial, the tableau row `eᵢᵀB⁻¹A` is formed with one BTRAN and
    /// priced against the real columns only; the first nonzero becomes the
    /// pivot. These pivots are counted in the deterministic budget exactly
    /// like ordinary ones (they are bounded by the row count, so no
    /// iteration valve applies). Positions with an all-zero row are
    /// redundant constraints and keep their artificial basic at zero.
    fn purge_artificials(&mut self) {
        let m = self.m();
        let mut v = vec![0.0f64; m];
        let mut w = vec![0.0f64; m];
        for pos in 0..m {
            if self.basis[pos] < self.n_real {
                continue;
            }
            v.iter_mut().for_each(|x| *x = 0.0);
            v[pos] = 1.0;
            self.etas.btran(&mut v);
            let entering =
                (0..self.n_real).find(|&j| !self.in_basis[j] && self.a.col_dot(j, &v).abs() > EPS);
            if let Some(j) = entering {
                w.iter_mut().for_each(|x| *x = 0.0);
                self.a.scatter(j, &mut w);
                self.etas.ftran(&mut w);
                // The artificial sits at (numerically) zero, so this pivot
                // cannot lose feasibility regardless of the pivot sign.
                self.pivot(pos, j, &w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Solves the LP relaxation of `model` with `overrides` applied.
pub(crate) fn solve_lp(
    model: &Model,
    overrides: &BoundOverrides,
) -> Result<LpSolution, SolveError> {
    solve_lp_warm(model, overrides, MAX_SIMPLEX_ITERS, None)
}

/// [`solve_lp`] with an explicit per-phase iteration valve (test hook).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn solve_lp_with_limit(
    model: &Model,
    overrides: &BoundOverrides,
    max_iters: u64,
) -> Result<LpSolution, SolveError> {
    solve_lp_warm(model, overrides, max_iters, None)
}

/// [`solve_lp`] with an optional warm-start basis from a parent node.
pub(crate) fn solve_lp_warm(
    model: &Model,
    overrides: &BoundOverrides,
    max_iters: u64,
    warm: Option<&WarmBasis>,
) -> Result<LpSolution, SolveError> {
    solve_lp_warm_gmi(model, overrides, max_iters, warm, false).map(|(lp, _)| lp)
}

/// [`solve_lp_warm`] that additionally separates Gomory mixed-integer
/// cuts from the optimal basis when `want_cuts` is set (and the solve was
/// not truncated). Returned cuts are in the model's original variable
/// space, are valid for every integer-feasible point, and are violated by
/// the LP point just returned by more than the separation tolerance.
pub(crate) fn solve_lp_warm_gmi(
    model: &Model,
    overrides: &BoundOverrides,
    max_iters: u64,
    warm: Option<&WarmBasis>,
    want_cuts: bool,
) -> Result<(LpSolution, Vec<crate::model::Constraint>), SolveError> {
    let prep = prepare(model, overrides)?;
    let n = prep.n;
    let m = prep.rows.len();

    // Row flips (rhs ≥ 0 normalization) and slack column layout.
    let mut b = vec![0.0f64; m];
    let mut flip = vec![false; m];
    let mut slack_col_of_row: Vec<Option<usize>> = vec![None; m];
    let mut num_slack = 0usize;
    for (i, r) in prep.rows.iter().enumerate() {
        flip[i] = r.rhs < 0.0;
        let s = if flip[i] { -1.0 } else { 1.0 };
        b[i] = s * r.rhs;
        if r.op != Cmp::Eq {
            slack_col_of_row[i] = Some(n + num_slack);
            num_slack += 1;
        }
    }
    let n_real = n + num_slack;

    // Initial basis: slack column if it has +1 in the row, else artificial.
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut art_of_row: Vec<Option<usize>> = vec![None; m];
    let mut n_art = 0usize;
    for (i, r) in prep.rows.iter().enumerate() {
        let s = if flip[i] { -1.0 } else { 1.0 };
        let slack_sign = match r.op {
            Cmp::Le => s,
            Cmp::Ge => -s,
            Cmp::Eq => 0.0,
        };
        if slack_sign > 0.5 {
            basis[i] = slack_col_of_row[i].expect("non-Eq row has a slack");
        } else {
            art_of_row[i] = Some(n_real + n_art);
            basis[i] = n_real + n_art;
            n_art += 1;
        }
    }

    // CSC assembly: structural columns (duplicate terms merged, exactly as
    // the dense tableau's `+=` accumulation), slack columns, artificials.
    let ncols = n_real + n_art;
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    for (i, r) in prep.rows.iter().enumerate() {
        let s = if flip[i] { -1.0 } else { 1.0 };
        for &(v, coef) in &r.coeffs {
            cols[v].push((i, s * coef));
        }
        match r.op {
            Cmp::Le => cols[slack_col_of_row[i].expect("slack")].push((i, s)),
            Cmp::Ge => cols[slack_col_of_row[i].expect("slack")].push((i, -s)),
            Cmp::Eq => {}
        }
        if let Some(a) = art_of_row[i] {
            cols[a].push((i, 1.0));
        }
    }
    let mut col_ptr = Vec::with_capacity(ncols + 1);
    let mut row_idx = Vec::new();
    let mut val = Vec::new();
    col_ptr.push(0usize);
    for col in &mut cols {
        // Merge duplicate (row, coef) entries from repeated terms.
        col.sort_by_key(|&(i, _)| i);
        let mut k = 0usize;
        while k < col.len() {
            let (i, mut acc) = col[k];
            let mut j = k + 1;
            while j < col.len() && col[j].0 == i {
                acc += col[j].1;
                j += 1;
            }
            if acc != 0.0 {
                row_idx.push(i);
                val.push(acc);
            }
            k = j;
        }
        col_ptr.push(row_idx.len());
    }
    let a = Csc {
        m,
        col_ptr,
        row_idx,
        val,
    };
    debug_assert_eq!(a.m, m);

    // Phase-2 costs, built up front because warm adoption prices against
    // them: artificial columns are simply excluded from pricing (the dense
    // engine equivalently pins them with a −1e18 cost); any artificial
    // still basic from a redundant row stays at zero.
    let mut c2 = vec![0.0f64; ncols];
    c2[..n].copy_from_slice(&prep.obj[..n]);

    // Warm start: adopt the supplied basis when it fits inside the new
    // system (`rows`/`cols` no larger, every basic column real in the old
    // system), extended for any appended rows, provided the candidate
    // refactors. Three outcomes, checked in order:
    //
    // 1. **Primal feasible** — the old optimum still stands under the new
    //    bounds/rows: phase 1 is skipped entirely and phase 2 confirms
    //    optimality (usually in zero pivots).
    // 2. **Primal infeasible but dual feasible** (no artificial basic and
    //    every nonbasic reduced cost ≤ 0 against the phase-2 costs) — the
    //    typical state after branching tightened a bound or a cut row was
    //    appended: the **dual simplex** re-solves from here, no phase 1.
    //    Appended rows enter basic on their *slack* column when they have
    //    one precisely to keep this candidate artificial-free — a `≥` cut
    //    row's natural basis entry would be an artificial, forcing the
    //    warm phase 1 below.
    // 3. Otherwise (an artificial landed in the basis — an appended `=`
    //    row, or an old redundant-row artificial was substituted) — a
    //    *warm* phase 1 drives the few artificials out from the
    //    near-feasible starting point.
    //
    // All checks are pure functions of the model, so the decision is
    // deterministic, and a basis from a foreign model can at worst fail
    // the checks and fall back to a cold start.
    let mut adopted: Option<Rsm> = None;
    let mut dual_warm = false;
    if let Some(wb) = warm {
        if wb.cols <= n_real {
            // Positions holding an old *artificial* (col ≥ wb.cols — kept
            // basic at zero by a redundant row) cannot map into the new
            // system; substitute the new system's natural column for that
            // row and let the gates below sort it out. A basis recorded on
            // a system with *more* rows (a remapped entry from a drifted
            // model) contributes its leading rows only — the truncation is
            // a guess, and the refactorization below is what validates it.
            let take = wb.basis.len().min(m);
            let mut cand_basis: Vec<usize> = wb.basis[..take]
                .iter()
                .enumerate()
                .map(|(i, &c)| if c < wb.cols { c } else { basis[i] })
                .collect();
            for i in take..m {
                cand_basis.push(slack_col_of_row[i].unwrap_or(basis[i]));
            }
            let mut cand = Rsm::new(&a, b.clone(), n_real, cand_basis);
            if cand.refactor() {
                cand.refactors = 0; // setup, not a mid-solve refactorization
                if cand.xb.iter().all(|&x| x >= -1e-7) {
                    for x in cand.xb.iter_mut() {
                        if *x < 0.0 {
                            *x = 0.0;
                        }
                    }
                    adopted = Some(cand);
                } else if cand.basis.iter().all(|&c| c < n_real) {
                    // One BTRAN prices every nonbasic real column against
                    // the phase-2 costs; nonpositive reduced costs
                    // certify the old optimum is still dual feasible.
                    let mut y = vec![0.0f64; m];
                    for (pos, &col) in cand.basis.iter().enumerate() {
                        if c2[col] != 0.0 {
                            y[pos] = c2[col];
                        }
                    }
                    cand.etas.btran(&mut y);
                    let dual_ok =
                        (0..n_real).all(|j| cand.in_basis[j] || c2[j] - a.col_dot(j, &y) <= 1e-7);
                    if dual_ok {
                        dual_warm = true;
                        adopted = Some(cand);
                    }
                }
            }
        }
    }

    let mut warmed = adopted.is_some();
    // Work spent on a dual walk that stalled before reaching feasibility:
    // carried into the cold restart's counters so the deterministic pivot
    // budget stays honest.
    let mut spent = (0u64, 0u64, 0u64);
    let dual_fallback = 'warm: {
        if let Some(mut r) = adopted {
            if dual_warm {
                match r.dual_optimize(&c2, n_real, max_iters)? {
                    (_, false) => break 'warm Some(r),
                    (_, true) => {
                        // The valve fired mid-walk: the basis may still be
                        // primal infeasible, which phase 2 cannot start
                        // from. Discard it and cold-start below.
                        spent = (r.pivots, r.dual_pivots, r.refactors);
                        warmed = false;
                        break 'warm None;
                    }
                }
            }
            // Appended rows may have installed artificials in the adopted
            // basis; a warm phase 1 drives them out from the near-feasible
            // starting point (far cheaper than cold phase 1 over all rows).
            if n_art > 0 && r.basis.iter().any(|&c| c >= n_real) {
                let mut c1 = vec![0.0f64; ncols];
                for art in art_of_row.iter().flatten() {
                    c1[*art] = -1.0;
                }
                let (z, truncated) = r.optimize(&c1, ncols, max_iters)?;
                if truncated {
                    return Err(SolveError::NodeLimit);
                }
                if z < -1e-7 {
                    return Err(SolveError::Infeasible);
                }
                r.purge_artificials();
            }
            Some(r)
        } else {
            None
        }
    };
    let mut rsm = match dual_fallback {
        Some(r) => r,
        None => {
            let mut r = Rsm::new(&a, b, n_real, basis);
            r.pivots += spent.0;
            r.dual_pivots += spent.1;
            r.refactors += spent.2;
            // Phase 1: maximize -(sum of artificials).
            if n_art > 0 {
                let mut c1 = vec![0.0f64; ncols];
                for art in art_of_row.iter().flatten() {
                    c1[*art] = -1.0;
                }
                let (z, truncated) = r.optimize(&c1, ncols, max_iters)?;
                if truncated {
                    // An unfinished phase 1 cannot certify feasibility;
                    // there is no usable incumbent to hand back.
                    return Err(SolveError::NodeLimit);
                }
                if z < -1e-7 {
                    return Err(SolveError::Infeasible);
                }
                r.purge_artificials();
            }
            r
        }
    };

    // Phase 2: the real objective. After a completed dual walk this is a
    // single no-op pricing pass confirming optimality.
    let (z, truncated) = rsm.optimize(&c2, n_real, max_iters)?;

    let mut values = vec![0.0f64; n];
    for (pos, &col) in rsm.basis.iter().enumerate() {
        if col < n {
            values[col] = rsm.xb[pos];
        }
    }
    for (v, l) in values.iter_mut().zip(&prep.lo) {
        *v += l;
    }
    let objective = prep.sign * (z + prep.obj_shift);

    let cuts = if want_cuts && !truncated {
        gomory_cuts(model, &prep, &a, &rsm, &slack_col_of_row, &values)
    } else {
        Vec::new()
    };

    Ok((
        LpSolution {
            values,
            objective,
            pivots: rsm.pivots,
            dual_pivots: rsm.dual_pivots,
            refactors: rsm.refactors,
            truncated,
            basis: Some(WarmBasis {
                rows: m,
                cols: n_real,
                basis: rsm.basis,
            }),
            warmed,
        },
        cuts,
    ))
}

/// Separation tolerance: a cut must beat the root point by this much to be
/// worth a re-solve (and for the violation to be numerically trustworthy).
const CUT_VIOLATION_TOL: f64 = 1e-6;

/// Coefficient-dynamism cap: a cut whose nonzero coefficients span more
/// than this ratio is numerically fragile and gets discarded.
const CUT_DYNAMISM_CAP: f64 = 1e7;

/// Generates Gomory mixed-integer (GMI) cuts from the optimal basis of the
/// just-solved LP, translated back to the model's original variable space.
///
/// For each basis position holding a *structural integer* variable at a
/// fractional value (source rows are scanned in basis-position order, so
/// the cut list is deterministic), the tableau row `eₚᵀB⁻¹A` is formed
/// with one BTRAN, and the standard GMI coefficients are applied to every
/// nonbasic real column — the fractional-part formula for integer
/// structural columns whose shift preserved integrality, the always-valid
/// continuous formula for everything else. Slack terms are substituted
/// away (`s = rhs − Σa·x'` for `≤` rows, the negation for `≥`), the
/// lower-bound shift is undone, and the result lands as a plain `≥`
/// constraint over the original variables.
///
/// Artificial columns are skipped: they are zero at every feasible point,
/// so dropping their (nonnegative-coefficient) terms keeps the cut valid.
/// Cuts that are non-finite, too wide in magnitude
/// ([`CUT_DYNAMISM_CAP`]), or not violated by the current root point by
/// more than [`CUT_VIOLATION_TOL`] are discarded.
fn gomory_cuts(
    model: &Model,
    prep: &Prepared,
    a: &Csc,
    rsm: &Rsm<'_>,
    slack_col_of_row: &[Option<usize>],
    root_values: &[f64],
) -> Vec<crate::model::Constraint> {
    use crate::model::{Constraint, VarId};

    let n = prep.n;
    let n_real = rsm.n_real;
    let m = rsm.m();
    // Inverse map: slack column -> its row.
    let mut row_of_slack: Vec<usize> = vec![usize::MAX; n_real];
    for (i, s) in slack_col_of_row.iter().enumerate() {
        if let Some(c) = s {
            row_of_slack[*c] = i;
        }
    }
    // Does the shift x' = x − lo preserve integrality of variable v?
    let int_shifted =
        |v: usize| model.vars[v].integer && (prep.lo[v] - prep.lo[v].round()).abs() <= 1e-9;

    let mut cuts = Vec::new();
    let mut y = vec![0.0f64; m];
    let mut coef = vec![0.0f64; n];
    for p in 0..m {
        let col = rsm.basis[p];
        if col >= n || !int_shifted(col) {
            continue;
        }
        let xb = rsm.xb[p];
        let f0 = xb - xb.floor();
        if !(0.01..=0.99).contains(&f0) {
            continue;
        }
        // Tableau row p: y = eₚᵀB⁻¹, then ā_j = y·A_j per nonbasic column.
        y.iter_mut().for_each(|v| *v = 0.0);
        y[p] = 1.0;
        rsm.etas.btran(&mut y);
        coef.iter_mut().for_each(|v| *v = 0.0);
        // Cut over nonbasic variables: Σ γ_j t_j ≥ 1 (all nonbasic sit at
        // zero in this standard-form system, so the classic GMI applies).
        let mut rhs_cut = 1.0f64;
        for j in 0..n_real {
            if rsm.in_basis[j] {
                continue;
            }
            let abar = a.col_dot(j, &y);
            if abar.abs() <= 1e-11 {
                continue;
            }
            let gamma = if j < n && int_shifted(j) {
                let fj = abar - abar.floor();
                if fj <= f0 {
                    fj / f0
                } else {
                    (1.0 - fj) / (1.0 - f0)
                }
            } else if abar > 0.0 {
                abar / f0
            } else {
                -abar / (1.0 - f0)
            };
            if gamma.abs() <= 1e-11 {
                continue;
            }
            if j < n {
                coef[j] += gamma;
            } else {
                // Slack substitution against the (pre-flip) prepared row:
                // the flip sign cancels out of the slack's defining
                // equation, so `≤` gives s = rhs − Σa·x' and `≥` gives
                // s = Σa·x' − rhs.
                let row = &prep.rows[row_of_slack[j]];
                match row.op {
                    Cmp::Le => {
                        rhs_cut -= gamma * row.rhs;
                        for &(v, av) in &row.coeffs {
                            coef[v] -= gamma * av;
                        }
                    }
                    Cmp::Ge => {
                        rhs_cut += gamma * row.rhs;
                        for &(v, av) in &row.coeffs {
                            coef[v] += gamma * av;
                        }
                    }
                    Cmp::Eq => unreachable!("Eq rows have no slack"),
                }
            }
        }
        // Undo the lower-bound shift and assemble the constraint.
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        let mut rhs = rhs_cut;
        let mut max_c = 0.0f64;
        let mut min_c = f64::INFINITY;
        let mut ok = rhs_cut.is_finite();
        for (v, &c) in coef.iter().enumerate() {
            if c.abs() <= 1e-12 {
                continue;
            }
            if !c.is_finite() {
                ok = false;
                break;
            }
            rhs += c * prep.lo[v];
            max_c = max_c.max(c.abs());
            min_c = min_c.min(c.abs());
            terms.push((VarId(v), c));
        }
        if !ok || terms.is_empty() || !rhs.is_finite() || max_c > min_c * CUT_DYNAMISM_CAP {
            continue;
        }
        // Keep only cuts the root point actually violates.
        let lhs_now: f64 = terms.iter().map(|&(v, c)| c * root_values[v.index()]).sum();
        if lhs_now >= rhs - CUT_VIOLATION_TOL {
            continue;
        }
        cuts.push(Constraint {
            terms,
            op: Cmp::Ge,
            rhs,
        });
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::solve_lp_dense;
    use crate::model::{Model, Sense};

    #[test]
    fn lp_relaxation_of_fractional_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_apply() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 8.0);
        let mut ov = BoundOverrides::default();
        ov.entries.push((0, 0.0, 2.0));
        let lp = solve_lp(&m, &ov).unwrap();
        assert!((lp.values[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn conflicting_overrides_are_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, 10.0, 1.0, false);
        let mut ov = BoundOverrides::default();
        ov.entries.push((0, 5.0, 10.0));
        ov.entries.push((0, 0.0, 3.0));
        assert_eq!(solve_lp(&m, &ov).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn equality_only_system() {
        // x + y = 4, x - y = 2 -> unique point (3, 1).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 0.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 3.0).abs() < 1e-6);
        assert!((lp.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -2  (i.e. x >= 2) with max -x: optimum at x = 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, -1.0, false);
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, -2.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 2.0).abs() < 1e-6);
        assert!((lp.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 5.0, 1.0, false);
        for _ in 0..10 {
            m.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        }
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_objective_vars_stay_at_lower_bound() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, 8.0, 0.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 7.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        // Zero objective: any feasible x; must respect lo shift correctly.
        assert!((1.5..=7.0 + 1e-9).contains(&lp.values[0]));
    }

    #[test]
    fn beale_cycling_example_reaches_optimum() {
        // Beale's classic LP makes Dantzig pricing cycle forever without an
        // anti-cycling guard. The degenerate-streak fallback to Bland must
        // carry it to the true optimum z = 0.05 (a = 1/25, c = 1).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, f64::INFINITY, 0.75, false);
        let b = m.add_var("b", 0.0, f64::INFINITY, -150.0, false);
        let c = m.add_var("c", 0.0, f64::INFINITY, 0.02, false);
        let d = m.add_var("d", 0.0, f64::INFINITY, -6.0, false);
        m.add_constraint(
            vec![(a, 0.25), (b, -60.0), (c, -0.04), (d, 9.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            vec![(a, 0.5), (b, -90.0), (c, -0.02), (d, 3.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(vec![(c, 1.0)], Cmp::Le, 1.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!(!lp.truncated);
        assert!(
            (lp.objective - 0.05).abs() < 1e-6,
            "objective {} != 0.05",
            lp.objective
        );
    }

    #[test]
    fn iteration_valve_reports_truncation_honestly() {
        // A tiny valve stops phase 2 mid-flight: the result must be flagged
        // truncated and still be a feasible point, never a silent "optimum".
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0, 1.0, false);
        let y = m.add_var("y", 0.0, 4.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 6.0);
        let lp = solve_lp_with_limit(&m, &BoundOverrides::default(), 1).unwrap();
        assert!(lp.truncated);
        // Still primal feasible w.r.t. the single row and the bounds.
        assert!(lp.values[0] + lp.values[1] <= 6.0 + 1e-9);
        assert!((0.0..=4.0 + 1e-9).contains(&lp.values[0]));
        assert!((0.0..=4.0 + 1e-9).contains(&lp.values[1]));
        // With a generous valve the same model reaches the optimum 6.
        let full = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!(!full.truncated);
        assert!((full.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints meeting at the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_from_own_optimal_basis_skips_phase_one() {
        // Re-solving from the optimal basis must land on the same optimum
        // with zero pivots (the basis is already dual feasible).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let cold = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!(cold.pivots > 0);
        let warm = solve_lp_warm(
            &m,
            &BoundOverrides::default(),
            MAX_SIMPLEX_ITERS,
            cold.basis.as_ref(),
        )
        .unwrap();
        assert_eq!(warm.pivots, 0);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_with_tightened_bound_stays_correct() {
        // Branch-and-bound's use case: the child tightens one bound; the
        // parent basis must either carry over or be rejected — never give a
        // wrong optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 5.0, 2.0, true);
        let y = m.add_var("y", 0.0, 5.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 7.5);
        let root = solve_lp(&m, &BoundOverrides::default()).unwrap();
        let mut down = BoundOverrides::default();
        down.entries.push((0, f64::NEG_INFINITY, 3.0));
        let warm = solve_lp_warm(&m, &down, MAX_SIMPLEX_ITERS, root.basis.as_ref()).unwrap();
        let cold = solve_lp(&m, &down).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn refactorization_fires_on_long_solves() {
        // Singleton pivots add almost no eta fill, so the adaptive growth
        // trigger rightly stays quiet; a solve needing more than
        // REFACTOR_PIVOT_CAP pivots must still reinvert at least once via
        // the pivot-count backstop and reach the exact optimum.
        let n = 600;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| {
                m.add_var(
                    format!("x{i}"),
                    0.0,
                    f64::INFINITY,
                    1.0 + (i % 7) as f64,
                    false,
                )
            })
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            m.add_constraint(vec![(v, 1.0)], Cmp::Le, 1.0 + (i % 3) as f64);
        }
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!(lp.refactors >= 1, "expected a refactorization");
        let dense = solve_lp_dense(&m, &BoundOverrides::default()).unwrap();
        assert!(
            (lp.objective - dense.objective).abs() < 1e-6,
            "sparse {} vs dense {}",
            lp.objective,
            dense.objective
        );
    }

    #[test]
    fn sparse_and_dense_agree_on_the_doc_example() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let s = solve_lp(&m, &BoundOverrides::default()).unwrap();
        let d = solve_lp_dense(&m, &BoundOverrides::default()).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-9);
        assert_eq!(s.truncated, d.truncated);
    }
}
