//! Dense two-phase primal simplex.
//!
//! Operates on the LP relaxation of a [`Model`](crate::Model) with
//! variables shifted to `x' = x − lo ≥ 0`; finite upper bounds become
//! explicit rows. Phase 1 minimizes the sum of artificial variables to find
//! a basic feasible solution; phase 2 optimizes the real objective.
//! Bland's rule guarantees termination.

use crate::model::{Cmp, Model, Sense, SolveError};

const EPS: f64 = 1e-9;

/// Result of an LP solve: variable values (in the model's original space),
/// the objective value, and the simplex pivots spent (the deterministic
/// work measure behind [`Model::set_work_limit`](crate::Model::set_work_limit)).
#[derive(Debug, Clone)]
pub(crate) struct LpSolution {
    pub values: Vec<f64>,
    pub objective: f64,
    pub pivots: u64,
}

/// Extra bound constraints layered on top of a model by branch & bound.
#[derive(Debug, Clone, Default)]
pub(crate) struct BoundOverrides {
    /// `(var index, new lo, new hi)` triples; later entries win.
    pub entries: Vec<(usize, f64, f64)>,
}

impl BoundOverrides {
    pub fn bounds_for(&self, model: &Model, var: usize) -> (f64, f64) {
        let mut lo = model.vars[var].lo;
        let mut hi = model.vars[var].hi;
        for &(v, l, h) in &self.entries {
            if v == var {
                lo = lo.max(l);
                hi = hi.min(h);
            }
        }
        (lo, hi)
    }
}

/// Solves the LP relaxation of `model` with `overrides` applied.
pub(crate) fn solve_lp(
    model: &Model,
    overrides: &BoundOverrides,
) -> Result<LpSolution, SolveError> {
    let n = model.vars.len();
    let mut lo = vec![0.0f64; n];
    let mut hi = vec![f64::INFINITY; n];
    for v in 0..n {
        let (l, h) = overrides.bounds_for(model, v);
        if l > h + EPS {
            return Err(SolveError::Infeasible);
        }
        lo[v] = l;
        hi[v] = h;
    }

    // Rows: model constraints (rhs adjusted by lower-bound shift) plus one
    // row per finite upper bound.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len());
    for c in &model.constraints {
        let mut shift = 0.0;
        for &(v, a) in &c.terms {
            shift += a * lo[v.index()];
        }
        rows.push(Row {
            coeffs: c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
            op: c.op,
            rhs: c.rhs - shift,
        });
    }
    for v in 0..n {
        if hi[v].is_finite() {
            rows.push(Row {
                coeffs: vec![(v, 1.0)],
                op: Cmp::Le,
                rhs: hi[v] - lo[v],
            });
        }
    }

    // Objective in shifted space (maximize internally).
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj: Vec<f64> = model.vars.iter().map(|v| sign * v.obj).collect();
    let obj_shift: f64 = model
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| sign * v.obj * lo[i])
        .sum();

    // Build the tableau: columns = n structural + slacks + artificials.
    let m = rows.len();
    let mut num_slack = 0usize;
    for r in &rows {
        if r.op != Cmp::Eq {
            num_slack += 1;
        }
    }
    let total_pre_art = n + num_slack;

    // First normalize rhs >= 0 (flip rows with negative rhs).
    // a: m x (total columns incl. artificials), built incrementally.
    let mut a = vec![vec![0.0f64; total_pre_art]; m];
    let mut b = vec![0.0f64; m];
    let mut slack_idx = 0usize;
    let mut slack_col_of_row: Vec<Option<usize>> = vec![None; m];
    for (i, r) in rows.iter().enumerate() {
        let mut flip = false;
        if r.rhs < 0.0 {
            flip = true;
        }
        let s = if flip { -1.0 } else { 1.0 };
        for &(v, coef) in &r.coeffs {
            a[i][v] += s * coef;
        }
        b[i] = s * r.rhs;
        match r.op {
            Cmp::Le => {
                let col = n + slack_idx;
                a[i][col] = s; // slack (+1) flips with the row
                slack_col_of_row[i] = Some(col);
                slack_idx += 1;
            }
            Cmp::Ge => {
                let col = n + slack_idx;
                a[i][col] = -s; // surplus
                slack_col_of_row[i] = Some(col);
                slack_idx += 1;
            }
            Cmp::Eq => {}
        }
    }

    // Choose initial basis: slack column if it has +1 in the row, otherwise
    // an artificial variable.
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::new();
    let mut ncols = total_pre_art;
    for i in 0..m {
        match slack_col_of_row[i] {
            Some(col) if a[i][col] > 0.5 => basis[i] = col,
            _ => {
                for row in a.iter_mut() {
                    row.push(0.0);
                }
                a[i][ncols] = 1.0;
                basis[i] = ncols;
                art_cols.push(ncols);
                ncols += 1;
            }
        }
    }

    // Phase 1: maximize -(sum of artificials).
    let mut pivots = 0u64;
    if !art_cols.is_empty() {
        let mut c1 = vec![0.0f64; ncols];
        for &col in &art_cols {
            c1[col] = -1.0;
        }
        let z = run_simplex(&mut a, &mut b, &mut basis, &c1, &mut pivots)?;
        if z < -1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Pivot any artificial variables out of the basis if possible.
        for i in 0..m {
            if art_cols.contains(&basis[i]) {
                let pivot_col = (0..total_pre_art).find(|&j| a[i][j].abs() > EPS);
                if let Some(j) = pivot_col {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                    pivots += 1;
                }
                // Rows still basic in an artificial are redundant (zero).
            }
        }
    }

    // Phase 2: real objective; artificial columns fixed at zero by
    // zeroing their coefficients and never letting them enter (their
    // objective coefficient is hugely negative).
    let mut c2 = vec![0.0f64; ncols];
    c2[..n].copy_from_slice(&obj[..n]);
    for &col in &art_cols {
        c2[col] = -1e18;
    }
    let z = run_simplex(&mut a, &mut b, &mut basis, &c2, &mut pivots)?;

    let mut values = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            values[basis[i]] = b[i];
        }
    }
    for v in 0..n {
        values[v] += lo[v];
    }
    let objective = sign * (z + obj_shift);
    Ok(LpSolution {
        values,
        objective,
        pivots,
    })
}

/// Runs primal simplex (maximization) on the tableau; returns the optimal
/// objective value in the shifted space.
fn run_simplex(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    basis: &mut [usize],
    c: &[f64],
    pivots: &mut u64,
) -> Result<f64, SolveError> {
    let m = a.len();
    let ncols = c.len();
    // Maintain the reduced-cost row explicitly: red[j] = c_j − c_B B⁻¹ A_j.
    // The tableau is kept in canonical form, so the initial row is computed
    // once and updated with every pivot (O(n) per iteration).
    let mut red: Vec<f64> = (0..ncols)
        .map(|j| {
            let mut r = c[j];
            for i in 0..m {
                let cb = c[basis[i]];
                if cb != 0.0 {
                    r -= cb * a[i][j];
                }
            }
            r
        })
        .collect();
    let mut iterations = 0u64;
    loop {
        iterations += 1;
        if iterations > 2_000_000 {
            // Bland's rule precludes cycling; this is a hard safety valve.
            return Err(SolveError::NodeLimit);
        }
        // Bland: first improving column.
        let Some(j) = (0..ncols).find(|&j| red[j] > 1e-7) else {
            // Optimal: objective = sum over basis of c_b * b_i.
            let z = (0..m).map(|i| c[basis[i]] * b[i]).sum();
            return Ok(z);
        };
        // Ratio test (Bland: smallest basis index tie-break).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if a[i][j] > EPS {
                let ratio = b[i] / a[i][j];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return Err(SolveError::Unbounded);
        };
        pivot(a, b, basis, i, j);
        *pivots += 1;
        // Update reduced costs: red -= red[j] * (pivoted row i).
        let factor = red[j];
        if factor.abs() > EPS {
            for (r, s) in red.iter_mut().zip(a[i].iter()) {
                *r -= factor * s;
            }
        }
        red[j] = 0.0;
    }
}

fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let m = a.len();
    let piv = a[row][col];
    debug_assert!(piv.abs() > EPS, "zero pivot");
    let inv = 1.0 / piv;
    for x in a[row].iter_mut() {
        *x *= inv;
    }
    b[row] *= inv;
    for i in 0..m {
        if i != row {
            let factor = a[i][col];
            if factor.abs() > EPS {
                let (src, dst) = if i < row {
                    let (lo_part, hi_part) = a.split_at_mut(row);
                    (&hi_part[0], &mut lo_part[i])
                } else {
                    let (lo_part, hi_part) = a.split_at_mut(i);
                    (&lo_part[row], &mut hi_part[0])
                };
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d -= factor * s;
                }
                b[i] -= factor * b[row];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn lp_relaxation_of_fractional_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_apply() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 8.0);
        let mut ov = BoundOverrides::default();
        ov.entries.push((0, 0.0, 2.0));
        let lp = solve_lp(&m, &ov).unwrap();
        assert!((lp.values[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn conflicting_overrides_are_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, 10.0, 1.0, false);
        let mut ov = BoundOverrides::default();
        ov.entries.push((0, 5.0, 10.0));
        ov.entries.push((0, 0.0, 3.0));
        assert_eq!(solve_lp(&m, &ov).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn equality_only_system() {
        // x + y = 4, x - y = 2 -> unique point (3, 1).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 0.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 3.0).abs() < 1e-6);
        assert!((lp.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -2  (i.e. x >= 2) with max -x: optimum at x = 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, -1.0, false);
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, -2.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 2.0).abs() < 1e-6);
        assert!((lp.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 5.0, 1.0, false);
        for _ in 0..10 {
            m.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        }
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.values[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_objective_vars_stay_at_lower_bound() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, 8.0, 0.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 7.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        // Zero objective: any feasible x; must respect lo shift correctly.
        assert!((1.5..=7.0 + 1e-9).contains(&lp.values[0]));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints meeting at the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let lp = solve_lp(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.objective - 1.0).abs() < 1e-6);
    }
}
