//! A small mixed-integer linear programming solver.
//!
//! This crate replaces Gurobi in the paper's flow. It provides:
//!
//! * a dense two-phase primal simplex LP solver with Bland's anti-cycling
//!   rule,
//! * branch & bound over integer/binary variables with incumbent pruning,
//! * a lazy-cut loop ([`Model::solve_with_cuts`]) used by the buffer
//!   placer to add critical-path covering constraints on demand.
//!
//! The buffer-placement MILPs of the evaluation have a few hundred binary
//! variables and a few hundred rows — comfortably within reach of a dense
//! tableau.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`:
//!
//! ```
//! use milp::{Model, Sense, Cmp};
//!
//! # fn main() -> Result<(), milp::SolveError> {
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! m.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - 12.0).abs() < 1e-6); // x = 4, y = 0
//! # Ok(())
//! # }
//! ```

mod branch;
mod model;
mod simplex;

pub use model::{Cmp, Constraint, Model, Sense, Solution, SolveError, Status, VarId};
