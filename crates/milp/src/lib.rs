//! A small mixed-integer linear programming solver.
//!
//! This crate replaces Gurobi in the paper's flow. It provides:
//!
//! * a **sparse revised** two-phase primal simplex plus a **dual simplex**
//!   for warm re-solves (the default [`Engine::SparseRevised`]) and the
//!   legacy dense tableau ([`Engine::DenseTableau`]) it superseded, all
//!   with Dantzig pricing and a Bland anti-cycling fallback,
//! * deterministic, optionally parallel branch & bound over
//!   integer/binary variables with incumbent pruning and warm-started
//!   node bases ([`Model::set_jobs`]),
//! * constraint-row canonicalization ([`Model::canonicalize`]),
//! * a lazy-cut loop ([`Model::solve_with_cuts`]) used by the buffer
//!   placer to add critical-path covering constraints on demand.
//!
//! # The sparse revised simplex
//!
//! The buffer-placement MILPs have a few hundred variables and rows, but
//! each row carries only a handful of nonzeros (a throughput constraint
//! couples one channel to two node retiming values; a covering cut sums a
//! few binaries). The dense tableau paid O(rows × columns) per pivot to
//! rewrite an almost-entirely-zero matrix; the revised engine instead
//! keeps:
//!
//! * the constraint matrix in **CSC** (compressed sparse column) form,
//!   built once per solve and never modified;
//! * the basis inverse as a **product-form eta file**: each pivot appends
//!   one sparse eta vector, and `B⁻¹v` / `vᵀB⁻¹` (FTRAN / BTRAN) apply
//!   the file in O(total eta nonzeros);
//! * an **adaptive refactorization** policy: the file is rebuilt from the
//!   current basis columns (greedy partial-pivoting re-inversion) when its
//!   nonzero growth since the last factorization exceeds a threshold
//!   scaled to the factorized basis size — with a fixed pivot-count
//!   backstop — bounding FTRAN/BTRAN cost and floating-point drift on
//!   exactly the solves that need it instead of on a wall-clock-blind
//!   fixed schedule. The trigger reads only deterministic counters, so
//!   the rebuilt points reproduce bit-for-bit.
//!
//! Per iteration the engine BTRANs the basic costs, prices every nonbasic
//! column with one sparse dot product (Dantzig: most positive reduced
//! cost, lowest index on ties; Bland's first-improving rule after 50
//! consecutive degenerate pivots), FTRANs the entering column, and runs
//! the usual ratio test. Simplex *pivots* remain the deterministic work
//! currency behind [`Model::set_work_limit`]: the pivot sequence is a
//! pure function of the model, so truncated solves reproduce bit-for-bit
//! across machines, thread counts, and engine-internal timing.
//!
//! # Root strengthening: presolve and cutting planes
//!
//! Before any simplex work, [`Model::solve`] runs a **presolve** pass
//! (bound tightening from row activities, singleton-row substitution,
//! Savelsbergh coefficient reduction — see the `presolve` module) that
//! shrinks the model while preserving its mixed-integer optimum; the
//! reductions are reported in [`Solution::presolve`]. At the root LP
//! optimum, a round-limited loop separates **Gomory mixed-integer cuts**
//! (from the optimal tableau) and **knapsack cover cuts** (from the
//! rows), re-solving each round from the previous round's basis
//! ([`Model::set_cut_rounds`]). Separated cuts pass a **quality scorer**
//! before admission — ranked by efficacy (violation over coefficient
//! norm), penalized for near-parallelism to already-selected cuts,
//! preferring sparser rows, under a fixed per-round budget; rejects are
//! counted in [`Solution::cut_score_rejected`]. Both layers can be
//! disabled
//! ([`Model::set_presolve`]) to recover the raw model as an oracle; the
//! dense engine never generates cuts and serves the same role.
//!
//! # Deterministic parallel best-first branch & bound
//!
//! [`Model::solve`] explores the tree best-bound-first: open nodes live in
//! a priority queue ordered by the parent LP bound, with deterministic
//! depth and creation-sequence tie-breaks. Fixed-size waves of at most 8
//! nodes are popped (entries dominated by the incumbent are discarded at
//! pop time, counted in [`Solution::nodes_pruned`]), their LP relaxations
//! solved concurrently on up to [`Model::set_jobs`] scoped threads, and
//! the results folded back **sequentially in pop order** — pruning,
//! incumbent updates, budget checks, and child pushes all run on one
//! thread in a fixed order. Because wave composition never depends on the
//! thread count and each LP solve is a pure function of
//! `(model, bounds, warm basis)`, the returned solution, objective, node
//! count, and pivot count are bit-identical for any `jobs` value; threads
//! only decide how fast the same tree is walked. The work meter charges
//! each LP solve a fixed pivot-equivalent overhead on top of its pivots,
//! so budgets and the stagnation valve stay honest even when warm
//! re-solves finish in a handful of pivots.
//!
//! # Dual simplex warm re-solves
//!
//! Branching tightens one variable bound, and appending a cut row extends
//! the system by one slack: in both moves the parent optimum stays **dual
//! feasible** while (usually) turning primal infeasible. Wherever a
//! revalidated warm basis is dual feasible — child nodes re-solving from
//! the parent's final basis, post-cut re-solves with the new row basic on
//! its slack, and [`MilpWarmStore`] hits — the engine therefore runs the
//! **dual simplex** (most-infeasible leaving row, ratio-test entering
//! column, the same Bland-style anti-cycling fallback) instead of a cold
//! phase 1/2, typically reaching the new optimum in a handful of pivots
//! ([`Solution::dual_pivots`]). A dual walk that stalls discards the basis
//! and falls back to the primal phase-1 path, carrying its spent work into
//! the deterministic budget.
//!
//! # Cross-solve warm starts
//!
//! [`Model::solve_warm`] accepts a [`WarmStart`] — a previous solve's root
//! basis ([`Solution::root_basis`]) plus incumbent values, optionally
//! tagged with variable names so [`WarmStart::remap_to`] can follow a
//! drifted model — and uses both as starting points after revalidating
//! them against the new model. The caller-keyed [`MilpWarmStore`] carries
//! these across the paper's Fig.-4 iterations: the buffer placer keys
//! entries by the *problem* being re-solved (graph, CFDFCs, objective
//! weights), so later iterations hit the store even as cut counts and
//! bound tightenings reshape the model, and any numeric drift is caught
//! at adoption time, never trusted. A warm-started solve returns
//! bit-identical values to a cold one — the warm start only changes how
//! much work the proof takes.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`:
//!
//! ```
//! use milp::{Model, Sense, Cmp};
//!
//! # fn main() -> Result<(), milp::SolveError> {
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! m.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - 12.0).abs() < 1e-6); // x = 4, y = 0
//! # Ok(())
//! # }
//! ```

mod branch;
mod cuts;
mod dense;
mod model;
mod presolve;
mod simplex;
mod warm;

pub use cuts::{separate_root_cuts, RootCutReport};
pub use model::{
    Cmp, Constraint, Engine, Model, RowReduction, Sense, Solution, SolveError, Status, VarId,
};
pub use presolve::PresolveReport;
pub use simplex::WarmBasis;
pub use warm::{shape_key, MilpWarmStore, WarmStart};
