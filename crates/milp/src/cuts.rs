//! Root-node cutting planes: knapsack cover separation, deterministic
//! deduplication, and the diagnostic [`separate_root_cuts`] entry point.
//!
//! Two families are generated at the root LP optimum (sparse engine only):
//!
//! * **Gomory mixed-integer cuts** — derived from the optimal simplex
//!   tableau inside [`crate::simplex`] (they need `B⁻¹A` rows) and handed
//!   back through the solve call;
//! * **knapsack cover cuts** — separated here from the model rows and the
//!   root LP point alone: for a `≤` row over binary variables (negative
//!   coefficients complemented away), a greedy cover `C` with
//!   `Σ_C w_j > b` yields `Σ_C y_j ≤ |C| − 1`.
//!
//! Both families only ever *remove fractional LP points*: every
//! integer-feasible assignment of the original model satisfies every cut,
//! which is what the cut-validity proptests pin down. Separation is
//! deterministic — rows in index order, greedy ties broken on the variable
//! index, duplicates collapsed with the same bit-exact keys as
//! [`Model::canonicalize`](crate::Model::canonicalize) — so cut lists are
//! a pure function of the model.

use crate::model::{Cmp, Constraint, Model, SolveError, VarId};
use crate::simplex::{solve_lp_warm_gmi, BoundOverrides, MAX_SIMPLEX_ITERS};
use std::collections::BTreeSet;

/// Minimum violation of the root point for a cover cut to be emitted.
const COVER_VIOLATION_TOL: f64 = 1e-6;

/// Separates knapsack cover cuts from `model`'s rows at the LP point
/// `values`. Only `≤` rows whose every term is a binary variable
/// participate; rows are scanned in index order and each row contributes
/// at most one (greedy) cover.
pub(crate) fn cover_cuts(model: &Model, values: &[f64]) -> Vec<Constraint> {
    let is_binary = |v: usize| {
        let d = &model.vars[v];
        d.integer && d.lo == 0.0 && d.hi == 1.0
    };
    let mut cuts = Vec::new();
    for c in &model.constraints {
        if c.op != Cmp::Le || c.terms.len() < 2 {
            continue;
        }
        if !c
            .terms
            .iter()
            .all(|&(v, a)| a != 0.0 && is_binary(v.index()))
        {
            continue;
        }
        // Complement negative coefficients (y = 1 − x) so every weight is
        // positive: Σ a⁺x + Σ (−a⁻)(1−x) ≤ b − Σ a⁻ = b'.
        let b_c: f64 = c.rhs - c.terms.iter().map(|t| t.1.min(0.0)).sum::<f64>();
        if b_c <= 0.0 {
            continue;
        }
        // Items: (variable, weight, y-value at the root, complemented?).
        let items: Vec<(usize, f64, f64, bool)> = c
            .terms
            .iter()
            .map(|&(v, a)| {
                let x = values[v.index()].clamp(0.0, 1.0);
                if a > 0.0 {
                    (v.index(), a, x, false)
                } else {
                    (v.index(), -a, 1.0 - x, true)
                }
            })
            .collect();
        let total: f64 = items.iter().map(|i| i.1).sum();
        if total <= b_c + 1e-9 {
            continue; // no cover exists
        }
        // Greedy cover: take items in ascending (1 − y)/w — the ones the
        // LP point uses most aggressively first — until the weight budget
        // overflows. Ties break on the variable index.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&i, &j| {
            let ri = (1.0 - items[i].2) / items[i].1;
            let rj = (1.0 - items[j].2) / items[j].1;
            ri.total_cmp(&rj).then(items[i].0.cmp(&items[j].0))
        });
        let mut cover: Vec<usize> = Vec::new();
        let mut w_sum = 0.0;
        for &i in &order {
            cover.push(i);
            w_sum += items[i].1;
            if w_sum > b_c + 1e-9 {
                break;
            }
        }
        if w_sum <= b_c + 1e-9 {
            continue;
        }
        // Cover inequality Σ_C y ≤ |C| − 1; check violation at the root.
        let y_sum: f64 = cover.iter().map(|&i| items[i].2).sum();
        let cap = cover.len() as f64 - 1.0;
        if y_sum <= cap + COVER_VIOLATION_TOL {
            continue;
        }
        // Translate back: y = x keeps (v, +1); y = 1 − x becomes (v, −1)
        // with the constant folded into the rhs.
        cover.sort_by_key(|&i| items[i].0);
        let mut rhs = cap;
        let terms: Vec<(VarId, f64)> = cover
            .iter()
            .map(|&i| {
                let (v, _, _, comp) = items[i];
                if comp {
                    rhs -= 1.0;
                    (VarId(v), -1.0)
                } else {
                    (VarId(v), 1.0)
                }
            })
            .collect();
        cuts.push(Constraint {
            terms,
            op: Cmp::Le,
            rhs,
        });
    }
    cuts
}

/// Bit-exact identity of a row (same key scheme as
/// [`Model::canonicalize`]): sorted terms with coefficient bits, plus the
/// operator.
fn row_key(c: &Constraint) -> (Vec<(usize, u64)>, u8) {
    let mut terms: Vec<(usize, u64)> = c
        .terms
        .iter()
        .map(|&(v, a)| (v.index(), a.to_bits()))
        .collect();
    terms.sort_unstable();
    (terms, c.op as u8)
}

/// Drops cuts that duplicate an existing model row or an earlier cut in
/// the batch (first occurrence wins; order otherwise preserved).
pub(crate) fn dedup_cuts(cuts: Vec<Constraint>, model: &Model) -> Vec<Constraint> {
    let mut seen: BTreeSet<(Vec<(usize, u64)>, u8)> =
        model.constraints.iter().map(row_key).collect();
    cuts.into_iter()
        .filter(|c| seen.insert(row_key(c)))
        .collect()
}

/// What one round of root-cut separation produced (diagnostic surface for
/// the cut-validity test suite).
#[derive(Debug, Clone)]
pub struct RootCutReport {
    /// The deduplicated cuts, in generation order (GMI first, then covers).
    pub cuts: Vec<Constraint>,
    /// The root LP relaxation point the cuts were separated from.
    pub root_values: Vec<f64>,
    /// The root LP objective.
    pub root_objective: f64,
}

/// Solves `model`'s root LP relaxation with the sparse engine and runs one
/// round of Gomory + cover separation against the optimum, without
/// mutating the model or entering branch & bound. Every returned cut is
/// violated by `root_values`; none excludes any integer-feasible point —
/// the two properties the proptest suite checks directly.
///
/// # Errors
///
/// [`SolveError::Infeasible`] / [`SolveError::Unbounded`] from the root
/// LP, or [`SolveError::NodeLimit`] if the LP iteration valve fired (no
/// optimal tableau means nothing sound to separate from).
pub fn separate_root_cuts(model: &Model) -> Result<RootCutReport, SolveError> {
    let ov = BoundOverrides::default();
    let (lp, gmi) = solve_lp_warm_gmi(model, &ov, MAX_SIMPLEX_ITERS, None, true)?;
    if lp.truncated {
        return Err(SolveError::NodeLimit);
    }
    let mut cuts = gmi;
    cuts.extend(cover_cuts(model, &lp.values));
    let cuts = dedup_cuts(cuts, model);
    Ok(RootCutReport {
        cuts,
        root_values: lp.values,
        root_objective: lp.objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn cover_cut_separates_a_fractional_knapsack_point() {
        // max 4x0+5x1+6x2 st 3x0+4x1+5x2 <= 6: the LP optimum is
        // (1, 0.75, 0) — fractional — and a cut must separate it.
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<VarId> = [4.0, 5.0, 6.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(format!("i{i}"), v))
            .collect();
        let weights = [3.0, 4.0, 5.0];
        m.add_constraint(
            items.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            Cmp::Le,
            6.0,
        );
        let rep = separate_root_cuts(&m).expect("root LP solves");
        assert!(!rep.cuts.is_empty(), "expected at least one cut");
        // Each cut is violated at the root point…
        for c in &rep.cuts {
            let act: f64 = c
                .terms
                .iter()
                .map(|&(v, a)| a * rep.root_values[v.index()])
                .sum();
            match c.op {
                Cmp::Le => assert!(act > c.rhs + 1e-7, "cut not violated"),
                Cmp::Ge => assert!(act < c.rhs - 1e-7, "cut not violated"),
                Cmp::Eq => panic!("unexpected equality cut"),
            }
        }
        // …and none cuts off the integer optimum (item 2 alone).
        let opt = [0.0, 0.0, 1.0];
        for c in &rep.cuts {
            let act: f64 = c.terms.iter().map(|&(v, a)| a * opt[v.index()]).sum();
            let ok = match c.op {
                Cmp::Le => act <= c.rhs + 1e-7,
                Cmp::Ge => act >= c.rhs - 1e-7,
                Cmp::Eq => (act - c.rhs).abs() <= 1e-7,
            };
            assert!(ok, "cut excludes the integer optimum: {c:?}");
        }
    }

    #[test]
    fn dedup_drops_cuts_already_in_the_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        let dup = Constraint {
            terms: vec![(x, 1.0), (y, 1.0)],
            op: Cmp::Le,
            rhs: 1.0,
        };
        let fresh = Constraint {
            terms: vec![(x, 1.0)],
            op: Cmp::Le,
            rhs: 0.0,
        };
        let kept = dedup_cuts(vec![dup.clone(), fresh.clone(), dup], &m);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], fresh);
    }
}
