//! Root-node cutting planes: knapsack cover separation, quality scoring
//! ([`select_cuts`]), deterministic deduplication, and the diagnostic
//! [`separate_root_cuts`] entry point.
//!
//! Two families are generated at the root LP optimum (sparse engine only):
//!
//! * **Gomory mixed-integer cuts** — derived from the optimal simplex
//!   tableau inside [`crate::simplex`] (they need `B⁻¹A` rows) and handed
//!   back through the solve call;
//! * **knapsack cover cuts** — separated here from the model rows and the
//!   root LP point alone: for a `≤` row over binary variables (negative
//!   coefficients complemented away), a greedy cover `C` with
//!   `Σ_C w_j > b` yields `Σ_C y_j ≤ |C| − 1`.
//!
//! Both families only ever *remove fractional LP points*: every
//! integer-feasible assignment of the original model satisfies every cut,
//! which is what the cut-validity proptests pin down. Separation is
//! deterministic — rows in index order, greedy ties broken on the variable
//! index, duplicates collapsed with the same bit-exact keys as
//! [`Model::canonicalize`](crate::Model::canonicalize) — so cut lists are
//! a pure function of the model.

use crate::model::{Cmp, Constraint, Model, SolveError, VarId};
use crate::simplex::{solve_lp_warm_gmi, BoundOverrides, MAX_SIMPLEX_ITERS};
use std::collections::BTreeSet;

/// Minimum violation of the root point for a cover cut to be emitted.
const COVER_VIOLATION_TOL: f64 = 1e-6;

/// Separates knapsack cover cuts from `model`'s rows at the LP point
/// `values`. Only `≤` rows whose every term is a binary variable
/// participate; rows are scanned in index order and each row contributes
/// at most one (greedy) cover.
pub(crate) fn cover_cuts(model: &Model, values: &[f64]) -> Vec<Constraint> {
    let is_binary = |v: usize| {
        let d = &model.vars[v];
        d.integer && d.lo == 0.0 && d.hi == 1.0
    };
    let mut cuts = Vec::new();
    for c in &model.constraints {
        if c.op != Cmp::Le || c.terms.len() < 2 {
            continue;
        }
        if !c
            .terms
            .iter()
            .all(|&(v, a)| a != 0.0 && is_binary(v.index()))
        {
            continue;
        }
        // Complement negative coefficients (y = 1 − x) so every weight is
        // positive: Σ a⁺x + Σ (−a⁻)(1−x) ≤ b − Σ a⁻ = b'.
        let b_c: f64 = c.rhs - c.terms.iter().map(|t| t.1.min(0.0)).sum::<f64>();
        if b_c <= 0.0 {
            continue;
        }
        // Items: (variable, weight, y-value at the root, complemented?).
        let items: Vec<(usize, f64, f64, bool)> = c
            .terms
            .iter()
            .map(|&(v, a)| {
                let x = values[v.index()].clamp(0.0, 1.0);
                if a > 0.0 {
                    (v.index(), a, x, false)
                } else {
                    (v.index(), -a, 1.0 - x, true)
                }
            })
            .collect();
        let total: f64 = items.iter().map(|i| i.1).sum();
        if total <= b_c + 1e-9 {
            continue; // no cover exists
        }
        // Greedy cover: take items in ascending (1 − y)/w — the ones the
        // LP point uses most aggressively first — until the weight budget
        // overflows. Ties break on the variable index.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&i, &j| {
            let ri = (1.0 - items[i].2) / items[i].1;
            let rj = (1.0 - items[j].2) / items[j].1;
            ri.total_cmp(&rj).then(items[i].0.cmp(&items[j].0))
        });
        let mut cover: Vec<usize> = Vec::new();
        let mut w_sum = 0.0;
        for &i in &order {
            cover.push(i);
            w_sum += items[i].1;
            if w_sum > b_c + 1e-9 {
                break;
            }
        }
        if w_sum <= b_c + 1e-9 {
            continue;
        }
        // Cover inequality Σ_C y ≤ |C| − 1; check violation at the root.
        let y_sum: f64 = cover.iter().map(|&i| items[i].2).sum();
        let cap = cover.len() as f64 - 1.0;
        if y_sum <= cap + COVER_VIOLATION_TOL {
            continue;
        }
        // Translate back: y = x keeps (v, +1); y = 1 − x becomes (v, −1)
        // with the constant folded into the rhs.
        cover.sort_by_key(|&i| items[i].0);
        let mut rhs = cap;
        let terms: Vec<(VarId, f64)> = cover
            .iter()
            .map(|&i| {
                let (v, _, _, comp) = items[i];
                if comp {
                    rhs -= 1.0;
                    (VarId(v), -1.0)
                } else {
                    (VarId(v), 1.0)
                }
            })
            .collect();
        cuts.push(Constraint {
            terms,
            op: Cmp::Le,
            rhs,
        });
    }
    cuts
}

/// Bit-exact identity of a row (same key scheme as
/// [`Model::canonicalize`]): sorted terms with coefficient bits, plus the
/// operator.
fn row_key(c: &Constraint) -> (Vec<(usize, u64)>, u8) {
    let mut terms: Vec<(usize, u64)> = c
        .terms
        .iter()
        .map(|&(v, a)| (v.index(), a.to_bits()))
        .collect();
    terms.sort_unstable();
    (terms, c.op as u8)
}

/// Drops cuts that duplicate an existing model row or an earlier cut in
/// the batch (first occurrence wins; order otherwise preserved).
pub(crate) fn dedup_cuts(cuts: Vec<Constraint>, model: &Model) -> Vec<Constraint> {
    let mut seen: BTreeSet<(Vec<(usize, u64)>, u8)> =
        model.constraints.iter().map(row_key).collect();
    cuts.into_iter()
        .filter(|c| seen.insert(row_key(c)))
        .collect()
}

/// Per-round budget of the cut scorer: at most this many cuts are admitted
/// per separation round, best score first. Every admitted row taxes each
/// FTRAN/BTRAN of every later LP in the tree, so a short list of deep,
/// mutually diverse cuts beats a long list of shallow ones.
const CUT_ROUND_BUDGET: usize = 12;

/// Near-parallel rejection threshold: a candidate whose (≤-oriented, unit)
/// coefficient direction has cosine similarity above this with an already
/// selected cut adds almost no new facet and is dropped.
const CUT_PARALLEL_MAX: f64 = 0.95;

/// Scores a deduplicated separation round and keeps only the best
/// [`CUT_ROUND_BUDGET`] cuts instead of all of them. Returns the selected
/// cuts (in their original generation order) and the number rejected.
///
/// The score is the classical **efficacy** — the Euclidean distance the
/// cut pushes the root point `values`, `violation / ‖a‖₂` — boosted by up
/// to 1.5× for **sparsity** (a dense row taxes every later FTRAN/BTRAN
/// more). Candidates are taken greedily in descending score (separation
/// index breaks ties), skipping any whose direction is near-**parallel**
/// (cosine > [`CUT_PARALLEL_MAX`]) to a cut already selected this round.
/// Entirely a pure function of `(cuts, values)`, so the kept set — and
/// with it every downstream pivot — is deterministic.
pub(crate) fn select_cuts(
    cuts: Vec<Constraint>,
    values: &[f64],
    n_vars: usize,
) -> (Vec<Constraint>, u64) {
    if cuts.len() <= 1 {
        return (cuts, 0);
    }
    // (index, score, ≤-oriented unit direction sorted by variable).
    type Scored = (usize, f64, Vec<(usize, f64)>);
    let n_f = n_vars.max(1) as f64;
    let mut scored: Vec<Scored> = cuts
        .iter()
        .enumerate()
        .map(|(k, c)| {
            let act: f64 = c.terms.iter().map(|&(v, a)| a * values[v.index()]).sum();
            let norm = c.terms.iter().map(|t| t.1 * t.1).sum::<f64>().sqrt();
            let violation = match c.op {
                Cmp::Le => act - c.rhs,
                Cmp::Ge => c.rhs - act,
                Cmp::Eq => (act - c.rhs).abs(),
            };
            let efficacy = if norm > 0.0 {
                violation.max(0.0) / norm
            } else {
                0.0
            };
            let sparsity = (1.0 - c.terms.len() as f64 / n_f).max(0.0);
            let score = efficacy * (1.0 + 0.5 * sparsity);
            let sign = if c.op == Cmp::Ge { -1.0 } else { 1.0 };
            let mut dir: Vec<(usize, f64)> = c
                .terms
                .iter()
                .map(|&(v, a)| (v.index(), sign * a / norm.max(f64::MIN_POSITIVE)))
                .collect();
            dir.sort_unstable_by_key(|&(v, _)| v);
            (k, score, dir)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut keep = vec![false; cuts.len()];
    let mut chosen_dirs: Vec<&[(usize, f64)]> = Vec::new();
    for (k, _, dir) in &scored {
        if chosen_dirs.len() >= CUT_ROUND_BUDGET {
            break;
        }
        if chosen_dirs
            .iter()
            .any(|d| dir_dot(d, dir) > CUT_PARALLEL_MAX)
        {
            continue;
        }
        keep[*k] = true;
        chosen_dirs.push(dir);
    }
    let n_rejected = keep.iter().filter(|&&k| !k).count() as u64;
    let selected = cuts
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect();
    (selected, n_rejected)
}

/// Sparse dot product of two variable-sorted unit directions (the cosine
/// of the angle between the cuts).
fn dir_dot(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let (mut i, mut j, mut dot) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

/// What one round of root-cut separation produced (diagnostic surface for
/// the cut-validity test suite).
#[derive(Debug, Clone)]
pub struct RootCutReport {
    /// The deduplicated cuts, in generation order (GMI first, then covers).
    pub cuts: Vec<Constraint>,
    /// The root LP relaxation point the cuts were separated from.
    pub root_values: Vec<f64>,
    /// The root LP objective.
    pub root_objective: f64,
}

/// Solves `model`'s root LP relaxation with the sparse engine and runs one
/// round of Gomory + cover separation against the optimum, without
/// mutating the model or entering branch & bound. Every returned cut is
/// violated by `root_values`; none excludes any integer-feasible point —
/// the two properties the proptest suite checks directly.
///
/// # Errors
///
/// [`SolveError::Infeasible`] / [`SolveError::Unbounded`] from the root
/// LP, or [`SolveError::NodeLimit`] if the LP iteration valve fired (no
/// optimal tableau means nothing sound to separate from).
pub fn separate_root_cuts(model: &Model) -> Result<RootCutReport, SolveError> {
    let ov = BoundOverrides::default();
    let (lp, gmi) = solve_lp_warm_gmi(model, &ov, MAX_SIMPLEX_ITERS, None, true)?;
    if lp.truncated {
        return Err(SolveError::NodeLimit);
    }
    let mut cuts = gmi;
    cuts.extend(cover_cuts(model, &lp.values));
    let cuts = dedup_cuts(cuts, model);
    Ok(RootCutReport {
        cuts,
        root_values: lp.values,
        root_objective: lp.objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn cover_cut_separates_a_fractional_knapsack_point() {
        // max 4x0+5x1+6x2 st 3x0+4x1+5x2 <= 6: the LP optimum is
        // (1, 0.75, 0) — fractional — and a cut must separate it.
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<VarId> = [4.0, 5.0, 6.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(format!("i{i}"), v))
            .collect();
        let weights = [3.0, 4.0, 5.0];
        m.add_constraint(
            items.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            Cmp::Le,
            6.0,
        );
        let rep = separate_root_cuts(&m).expect("root LP solves");
        assert!(!rep.cuts.is_empty(), "expected at least one cut");
        // Each cut is violated at the root point…
        for c in &rep.cuts {
            let act: f64 = c
                .terms
                .iter()
                .map(|&(v, a)| a * rep.root_values[v.index()])
                .sum();
            match c.op {
                Cmp::Le => assert!(act > c.rhs + 1e-7, "cut not violated"),
                Cmp::Ge => assert!(act < c.rhs - 1e-7, "cut not violated"),
                Cmp::Eq => panic!("unexpected equality cut"),
            }
        }
        // …and none cuts off the integer optimum (item 2 alone).
        let opt = [0.0, 0.0, 1.0];
        for c in &rep.cuts {
            let act: f64 = c.terms.iter().map(|&(v, a)| a * opt[v.index()]).sum();
            let ok = match c.op {
                Cmp::Le => act <= c.rhs + 1e-7,
                Cmp::Ge => act >= c.rhs - 1e-7,
                Cmp::Eq => (act - c.rhs).abs() <= 1e-7,
            };
            assert!(ok, "cut excludes the integer optimum: {c:?}");
        }
    }

    #[test]
    fn dedup_drops_cuts_already_in_the_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        let dup = Constraint {
            terms: vec![(x, 1.0), (y, 1.0)],
            op: Cmp::Le,
            rhs: 1.0,
        };
        let fresh = Constraint {
            terms: vec![(x, 1.0)],
            op: Cmp::Le,
            rhs: 0.0,
        };
        let kept = dedup_cuts(vec![dup.clone(), fresh.clone(), dup], &m);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], fresh);
    }
}
