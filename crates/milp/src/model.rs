//! Model-building API and solver entry points.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The raw dense index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Cmp {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// LP engine backing [`Model::solve`] and [`Model::solve_relaxation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Engine {
    /// Legacy dense two-phase tableau ([`crate::dense`]): every pivot
    /// rewrites the full tableau. Kept as the measured baseline and the
    /// oracle for the equivalence tests.
    DenseTableau,
    /// Sparse revised simplex ([`crate::simplex`]): CSC matrix,
    /// product-form eta-file basis inverse with periodic refactorization,
    /// warm-started branch-and-bound nodes. The default.
    #[default]
    SparseRevised,
}

/// A linear constraint `Σ coeff·var (≤|≥|=) rhs`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Constraint {
    /// The linear terms (variable, coefficient).
    pub terms: Vec<(VarId, f64)>,
    /// The comparison operator.
    pub op: Cmp,
    /// The right-hand side.
    pub rhs: f64,
}

#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct VarDef {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub obj: f64,
    pub integer: bool,
}

/// Solution quality indicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Status {
    /// Proven optimal.
    Optimal,
    /// Feasible but the node limit stopped the proof of optimality.
    Feasible,
}

/// A solved assignment.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Solution {
    /// Value per variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Objective value under the model's [`Sense`].
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: Status,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex pivots spent across all explored nodes — the deterministic
    /// work measure behind [`Model::set_work_limit`].
    pub pivots: u64,
    /// Subset of `pivots` performed by the dual simplex on warm re-solves
    /// ([`Engine::SparseRevised`] only; always 0 for the dense tableau).
    pub dual_pivots: u64,
    /// Basis refactorizations performed across all explored nodes
    /// ([`Engine::SparseRevised`] only; always 0 for the dense tableau).
    pub refactors: u64,
    /// A node, work, or simplex-iteration budget fired before the search
    /// (or an LP phase) finished: the solution is feasible but `objective`
    /// may be short of the true optimum.
    pub truncated: bool,
    /// Cutting planes (Gomory mixed-integer + knapsack cover) added at the
    /// root ([`Engine::SparseRevised`] only).
    pub cuts: u64,
    /// Root cut-separation rounds that added at least one cut.
    pub cut_rounds: u64,
    /// Separated cuts rejected by the quality scorer (low efficacy, near
    /// parallelism to a selected cut, or over the round budget) instead of
    /// being added to the root LP.
    pub cut_score_rejected: u64,
    /// Best-first entries discarded by bound before their LP was solved
    /// (these never count toward `nodes`).
    pub nodes_pruned: u64,
    /// A caller-supplied warm basis ([`Model::solve_warm`]) was adopted at
    /// the root.
    pub warm_used: bool,
    /// What the presolve pass did (all-zero when presolve is disabled).
    pub presolve: crate::presolve::PresolveReport,
    /// Final basis of the root LP after the cut loop, for cross-solve warm
    /// starts ([`Engine::SparseRevised`] only).
    pub root_basis: Option<crate::simplex::WarmBasis>,
}

impl Solution {
    /// Value of `v`.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Rounded 0/1 reading of a binary variable.
    pub fn is_one(&self, v: VarId) -> bool {
        self.values[v.0] > 0.5
    }
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Branch & bound exhausted its node budget without any incumbent.
    NodeLimit,
    /// A variable was declared with `lo > hi`.
    BadBounds(String),
    /// Presolve proved the model infeasible before any simplex ran (crossed
    /// bounds, a row whose activity range misses its rhs, an integer
    /// variable pinned to a fractional value). The payload says which rule
    /// fired; the verdict is the same as [`SolveError::Infeasible`].
    PresolveInfeasible(String),
}

impl SolveError {
    /// `true` for both flavors of infeasibility (plain and presolve-detected).
    pub fn is_infeasible(&self) -> bool {
        matches!(
            self,
            SolveError::Infeasible | SolveError::PresolveInfeasible(_)
        )
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => f.write_str("model is infeasible"),
            SolveError::Unbounded => f.write_str("model is unbounded"),
            SolveError::NodeLimit => f.write_str("node limit reached without incumbent"),
            SolveError::BadBounds(v) => write!(f, "variable {v} has lo > hi"),
            SolveError::PresolveInfeasible(why) => {
                write!(f, "presolve proved the model infeasible: {why}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// What [`Model::canonicalize`] removed, row by row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RowReduction {
    /// Constraint rows before canonicalization.
    pub original: usize,
    /// Trivially-satisfied rows with no (surviving) terms.
    pub zero: usize,
    /// Rows implied by the variable bounds alone (activity bound already
    /// meets the rhs).
    pub redundant: usize,
    /// Rows with the same terms and operator as an earlier row (the
    /// survivor keeps the tightest rhs).
    pub duplicate: usize,
    /// Constraint rows after canonicalization.
    pub remaining: usize,
}

impl RowReduction {
    /// Total rows removed.
    pub fn dropped(&self) -> usize {
        self.zero + self.redundant + self.duplicate
    }
}

/// A mixed-integer linear program.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) node_limit: u64,
    pub(crate) gap: f64,
    pub(crate) work_limit: Option<u64>,
    pub(crate) engine: Engine,
    pub(crate) jobs: usize,
    pub(crate) presolve: bool,
    pub(crate) cut_rounds: usize,
}

/// Default root cut-separation round cap ([`Model::set_cut_rounds`]).
pub(crate) const DEFAULT_CUT_ROUNDS: usize = 4;

impl Model {
    /// Names of all variables, in column order — the payload for
    /// [`WarmStart::var_names`](crate::WarmStart::var_names), which lets a
    /// stored warm start follow its variables into a drifted model.
    pub fn var_names(&self) -> Vec<String> {
        self.vars.iter().map(|v| v.name.clone()).collect()
    }

    /// Creates an empty model.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            node_limit: 200_000,
            gap: 1e-9,
            work_limit: None,
            engine: Engine::default(),
            jobs: 1,
            presolve: true,
            cut_rounds: DEFAULT_CUT_ROUNDS,
        }
    }

    /// Adds a variable and returns its id.
    ///
    /// `lo`/`hi` are the bounds (`hi` may be `f64::INFINITY`), `obj` the
    /// objective coefficient, `integer` whether the variable must take an
    /// integral value.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        obj: f64,
        integer: bool,
    ) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            lo,
            hi,
            obj,
            integer,
        });
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, 0.0, 1.0, obj, true)
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, op: Cmp, rhs: f64) {
        self.constraints.push(Constraint { terms, op, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the absolute optimality gap: branch-and-bound prunes any node
    /// whose LP bound does not beat the incumbent by more than `gap`
    /// (default 1e-9 ⇒ exact). A small positive gap collapses search trees
    /// whose leaves differ only by tie-breaking noise.
    pub fn set_gap(&mut self, gap: f64) {
        self.gap = gap.max(0.0);
    }

    /// Caps branch-and-bound *work*, measured in simplex pivots summed over
    /// all tree nodes; on exhaustion the best incumbent is returned as
    /// [`Status::Feasible`] (or [`SolveError::NodeLimit`] when none
    /// exists). Unlike a wall-clock limit, the cutoff point is a pure
    /// function of the model, so truncated solves are reproducible
    /// run-to-run and machine-to-machine.
    pub fn set_work_limit(&mut self, pivots: u64) {
        self.work_limit = Some(pivots);
    }

    /// Caps the number of branch-and-bound nodes (default 200 000). When
    /// the cap is hit with an incumbent, [`Status::Feasible`] is returned
    /// instead of failing.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Selects the LP engine (default [`Engine::SparseRevised`]).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Worker threads for branch-and-bound node LPs (default 1). The
    /// search explores fixed-size node waves whose composition never
    /// depends on `jobs`, so the solution, objective, node count, and
    /// pivot count are bit-identical at any thread count — `jobs` is a
    /// pure throughput knob.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Enables/disables the presolve pass run by [`Model::solve`] (default
    /// on). Presolve is MILP-preserving, not LP-preserving, so
    /// [`Model::solve_relaxation`] never applies it; turning it off here
    /// restores the exact pre-presolve solver as an equivalence oracle.
    pub fn set_presolve(&mut self, on: bool) {
        self.presolve = on;
    }

    /// Caps root cut-separation rounds (default 4; `0` disables cutting
    /// planes entirely, restoring the cuts-off oracle). Cuts are only
    /// generated under [`Engine::SparseRevised`]; the dense tableau always
    /// solves the uncut model.
    pub fn set_cut_rounds(&mut self, rounds: usize) {
        self.cut_rounds = rounds;
    }

    /// Runs the presolve pass in place and reports what it did. Called
    /// automatically by [`Model::solve`] (on a clone, so the caller's model
    /// is never mutated) unless [`Model::set_presolve`] disabled it; exposed
    /// for tests and diagnostics. Idempotent: a second call is a no-op.
    ///
    /// # Errors
    ///
    /// [`SolveError::PresolveInfeasible`] when a presolve rule proves the
    /// model has no integer-feasible point.
    pub fn presolve(&mut self) -> Result<crate::presolve::PresolveReport, SolveError> {
        crate::presolve::run(self)
    }

    /// Canonicalizes the constraint rows in place and reports what was
    /// removed:
    ///
    /// * duplicate terms within a row are merged (and zero coefficients
    ///   dropped), terms sorted by variable;
    /// * rows left with no terms are dropped when trivially satisfied
    ///   (a violated empty row is kept so the solver reports
    ///   infeasibility);
    /// * rows already implied by the variable bounds are dropped — sound
    ///   under branch-and-bound, which only ever *tightens* bounds;
    /// * rows with identical terms and operator collapse to one row with
    ///   the tightest rhs (`≤` keeps the min, `≥` the max; `=` rows only
    ///   collapse when the rhs matches exactly).
    ///
    /// The buffer placer's covering-cut models shrink measurably: repeated
    /// cut rounds re-derive overlapping cuts, and channels fixed at 1 make
    /// whole covering rows redundant.
    pub fn canonicalize(&mut self) -> RowReduction {
        const TOL: f64 = 1e-9;
        let mut red = RowReduction {
            original: self.constraints.len(),
            ..RowReduction::default()
        };
        // Key: (sorted term list with bit-exact coefficients, operator).
        let mut seen: BTreeMap<(Vec<(usize, u64)>, u8), usize> = BTreeMap::new();
        let mut kept: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        'rows: for c in self.constraints.drain(..) {
            // Merge duplicate terms, drop zeros, sort by variable index.
            let mut merged: BTreeMap<usize, f64> = BTreeMap::new();
            for &(v, a) in &c.terms {
                *merged.entry(v.index()).or_insert(0.0) += a;
            }
            merged.retain(|_, a| *a != 0.0);
            let terms: Vec<(VarId, f64)> = merged.iter().map(|(&v, &a)| (VarId(v), a)).collect();

            if terms.is_empty() {
                let satisfied = match c.op {
                    Cmp::Le => 0.0 <= c.rhs + TOL,
                    Cmp::Ge => 0.0 >= c.rhs - TOL,
                    Cmp::Eq => c.rhs.abs() <= TOL,
                };
                if satisfied {
                    red.zero += 1;
                    continue 'rows;
                }
                // Violated: keep so the solver reports infeasibility.
                kept.push(Constraint {
                    terms,
                    op: c.op,
                    rhs: c.rhs,
                });
                continue 'rows;
            }

            // Activity-bound redundancy from the variable box alone.
            // Branching only tightens bounds, so a row redundant now stays
            // redundant at every node.
            match c.op {
                Cmp::Ge => {
                    let min_activity: f64 = terms
                        .iter()
                        .map(|&(v, a)| {
                            let d = &self.vars[v.index()];
                            if a > 0.0 {
                                a * d.lo
                            } else {
                                a * d.hi
                            }
                        })
                        .sum();
                    if min_activity.is_finite() && min_activity >= c.rhs - TOL {
                        red.redundant += 1;
                        continue 'rows;
                    }
                }
                Cmp::Le => {
                    let max_activity: f64 = terms
                        .iter()
                        .map(|&(v, a)| {
                            let d = &self.vars[v.index()];
                            if a > 0.0 {
                                a * d.hi
                            } else {
                                a * d.lo
                            }
                        })
                        .sum();
                    if max_activity.is_finite() && max_activity <= c.rhs + TOL {
                        red.redundant += 1;
                        continue 'rows;
                    }
                }
                Cmp::Eq => {}
            }

            // Exact duplicates (same terms, same operator): keep one row
            // with the tightest rhs.
            let key = (
                terms
                    .iter()
                    .map(|&(v, a)| (v.index(), a.to_bits()))
                    .collect::<Vec<_>>(),
                c.op as u8,
            );
            match seen.get(&key) {
                Some(&at) => {
                    let prev = &mut kept[at];
                    match c.op {
                        Cmp::Le => {
                            prev.rhs = prev.rhs.min(c.rhs);
                            red.duplicate += 1;
                        }
                        Cmp::Ge => {
                            prev.rhs = prev.rhs.max(c.rhs);
                            red.duplicate += 1;
                        }
                        Cmp::Eq => {
                            if prev.rhs == c.rhs {
                                red.duplicate += 1;
                            } else {
                                // Conflicting equalities: keep both; the
                                // solver will report infeasibility.
                                kept.push(Constraint {
                                    terms,
                                    op: c.op,
                                    rhs: c.rhs,
                                });
                            }
                        }
                    }
                }
                None => {
                    seen.insert(key, kept.len());
                    kept.push(Constraint {
                        terms,
                        op: c.op,
                        rhs: c.rhs,
                    });
                }
            }
        }
        red.remaining = kept.len();
        self.constraints = kept;
        red
    }

    /// Solves the model.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`],
    /// [`SolveError::NodeLimit`] (no incumbent found in budget), or
    /// [`SolveError::BadBounds`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_warm(None)
    }

    /// [`Model::solve`] with an optional cross-solve warm start: the basis
    /// (adopted at the root only when it still refactors to a primal
    /// feasible point — a pure, deterministic check) and, when present, an
    /// incumbent seed (validated against this model's rows and bounds
    /// before use; an invalid seed is silently ignored). A warm start can
    /// never change which solutions are feasible, only how fast the search
    /// converges.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_warm(
        &self,
        warm: Option<&crate::warm::WarmStart>,
    ) -> Result<Solution, SolveError> {
        for v in &self.vars {
            if v.lo > v.hi {
                return Err(SolveError::BadBounds(v.name.clone()));
            }
        }
        if self.presolve {
            let mut pre = self.clone();
            let report = crate::presolve::run(&mut pre)?;
            let mut sol = crate::branch::branch_and_bound(&pre, warm)?;
            sol.presolve = report;
            Ok(sol)
        } else {
            crate::branch::branch_and_bound(self, warm)
        }
    }

    /// Solves only the LP relaxation (integrality dropped). Useful as a
    /// rounding fallback when branch & bound hits its node limit.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`], or
    /// [`SolveError::BadBounds`].
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        for v in &self.vars {
            if v.lo > v.hi {
                return Err(SolveError::BadBounds(v.name.clone()));
            }
        }
        let ov = crate::simplex::BoundOverrides::default();
        let lp = match self.engine {
            Engine::SparseRevised => crate::simplex::solve_lp(self, &ov)?,
            Engine::DenseTableau => crate::dense::solve_lp_dense(self, &ov)?,
        };
        Ok(Solution {
            values: lp.values,
            objective: lp.objective,
            status: Status::Feasible,
            nodes: 1,
            pivots: lp.pivots,
            dual_pivots: lp.dual_pivots,
            refactors: lp.refactors,
            truncated: lp.truncated,
            cuts: 0,
            cut_rounds: 0,
            cut_score_rejected: 0,
            nodes_pruned: 0,
            warm_used: false,
            presolve: crate::presolve::PresolveReport::default(),
            root_basis: lp.basis,
        })
    }

    /// Solves with lazy cuts: after each integer-optimal solution the
    /// callback may return additional constraints (cuts); solving repeats
    /// until the callback returns no cuts. Returns the final solution and
    /// the number of cut rounds.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`]; infeasibility may also arise from the cuts.
    pub fn solve_with_cuts<F>(
        &mut self,
        max_rounds: usize,
        mut cuts: F,
    ) -> Result<(Solution, usize), SolveError>
    where
        F: FnMut(&Solution) -> Vec<Constraint>,
    {
        let mut rounds = 0;
        loop {
            let sol = self.solve()?;
            let new_cuts = cuts(&sol);
            if new_cuts.is_empty() || rounds >= max_rounds {
                return Ok((sol, rounds));
            }
            rounds += 1;
            self.constraints.extend(new_cuts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_lp_maximum() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 6.0).abs() < 1e-6);
        assert_eq!(sol.status, Status::Optimal);
    }

    #[test]
    fn minimization_with_ge() {
        // min x + y s.t. x + y >= 3, x >= 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        // Presolve catches the crossed bounds up front; with presolve off
        // phase 1 must still reach the same verdict.
        assert!(matches!(
            m.solve().unwrap_err(),
            SolveError::PresolveInfeasible(_)
        ));
        m.set_presolve(false);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn rejects_bad_bounds() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 2.0, 1.0, 1.0, false);
        assert!(matches!(m.solve(), Err(SolveError::BadBounds(_))));
    }

    #[test]
    fn knapsack_binary() {
        // Classic 0/1 knapsack: weights 2,3,4,5 values 3,4,5,6, cap 5.
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<VarId> = [3.0, 4.0, 5.0, 6.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(format!("i{i}"), v))
            .collect();
        let weights = [2.0, 3.0, 4.0, 5.0];
        m.add_constraint(
            items.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            Cmp::Le,
            5.0,
        );
        let sol = m.solve().unwrap();
        assert!((sol.objective - 7.0).abs() < 1e-6); // items 0 + 1
        assert!(sol.is_one(items[0]) && sol.is_one(items[1]));
    }

    #[test]
    fn integer_rounding_is_not_used() {
        // LP optimum fractional (x = 1.5); MILP must give 1 with obj 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lazy_cuts_tighten() {
        // max x + y, x,y in [0,1] binary; cut rounds force x + y <= 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        let (sol, rounds) = m
            .solve_with_cuts(10, |s| {
                if s.value(x) + s.value(y) > 1.5 {
                    vec![Constraint {
                        terms: vec![(x, 1.0), (y, 1.0)],
                        op: Cmp::Le,
                        rhs: 1.0,
                    }]
                } else {
                    Vec::new()
                }
            })
            .unwrap();
        assert_eq!(rounds, 1);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 with lo = -10.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -10.0, 10.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, -5.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) + 5.0).abs() < 1e-6);
    }

    #[test]
    fn both_engines_solve_the_knapsack() {
        for engine in [Engine::DenseTableau, Engine::SparseRevised] {
            let mut m = Model::new(Sense::Maximize);
            let items: Vec<VarId> = [3.0, 4.0, 5.0, 6.0]
                .iter()
                .enumerate()
                .map(|(i, &v)| m.add_binary(format!("i{i}"), v))
                .collect();
            let weights = [2.0, 3.0, 4.0, 5.0];
            m.add_constraint(
                items.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
                Cmp::Le,
                5.0,
            );
            m.set_engine(engine);
            let sol = m.solve().unwrap();
            assert!((sol.objective - 7.0).abs() < 1e-6, "{engine:?}");
        }
    }

    #[test]
    fn canonicalize_merges_duplicate_terms() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        // x + x <= 4 must behave as 2x <= 4 after canonicalization.
        m.add_constraint(vec![(x, 1.0), (x, 1.0)], Cmp::Le, 4.0);
        let red = m.canonicalize();
        assert_eq!(red.remaining, 1);
        assert_eq!(m.constraints[0].terms, vec![(x, 2.0)]);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn canonicalize_drops_zero_and_duplicate_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, false);
        m.add_constraint(vec![], Cmp::Le, 5.0); // 0 <= 5: trivially true
        m.add_constraint(vec![(x, 1.0), (x, -1.0)], Cmp::Ge, -1.0); // cancels to 0 >= -1
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 7.0);
        m.add_constraint(vec![(y, 1.0), (x, 1.0)], Cmp::Le, 4.0); // same terms, tighter
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 9.0); // same terms, looser
        let red = m.canonicalize();
        assert_eq!(red.original, 5);
        assert_eq!(red.zero, 2);
        assert_eq!(red.duplicate, 2);
        assert_eq!(red.remaining, 1);
        // The survivor keeps the tightest rhs.
        let sol = m.solve().unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn canonicalize_drops_bound_implied_rows() {
        let mut m = Model::new(Sense::Minimize);
        // Mirrors the placer's fixed buffers: lo = 1 makes covering rows
        // x + y >= 1 redundant.
        let x = m.add_var("x", 1.0, 1.0, 1.0, true);
        let y = m.add_var("y", 0.0, 1.0, 1.0, true);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint(vec![(y, 1.0)], Cmp::Ge, 1.0); // not redundant
        let red = m.canonicalize();
        assert_eq!(red.redundant, 1);
        assert_eq!(red.remaining, 1);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn canonicalize_keeps_violated_empty_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (x, -1.0)], Cmp::Ge, 3.0); // 0 >= 3: false
        let red = m.canonicalize();
        assert_eq!(red.zero, 0);
        assert_eq!(red.remaining, 1);
        assert!(m.solve().unwrap_err().is_infeasible());
        m.set_presolve(false);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn canonicalized_solution_matches_uncanonicalized() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 3.0);
        let y = m.add_binary("y", 2.0);
        let z = m.add_var("z", 0.0, 2.0, 1.0, false);
        m.add_constraint(vec![(x, 2.0), (y, 1.0), (z, 1.0)], Cmp::Le, 3.0);
        m.add_constraint(vec![(x, 2.0), (y, 1.0), (z, 1.0)], Cmp::Le, 3.0);
        m.add_constraint(vec![(z, 1.0)], Cmp::Le, 5.0); // implied by z <= 2
        let plain = m.solve().unwrap();
        let mut canon = m.clone();
        let red = canon.canonicalize();
        assert!(red.dropped() > 0);
        let sol = canon.solve().unwrap();
        assert!((sol.objective - plain.objective).abs() < 1e-6);
    }
}
