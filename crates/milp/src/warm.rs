//! Cross-solve warm starts: a fingerprint-keyed store that carries one
//! solve's optimal root basis and incumbent into the next structurally
//! identical model.
//!
//! The paper's Fig.-4 loop re-solves a nearly identical placement MILP
//! every iteration: the variable set is fixed by the circuit, only
//! objective weights and a few constraint right-hand sides drift as
//! penalties and cut sets evolve. Iteration *i*'s optimal basis is then a
//! near-perfect starting point for iteration *i+1*, and its incumbent an
//! immediate pruning bound.
//!
//! The store is keyed by whatever `u64` the caller supplies. [`shape_key`]
//! — an FNV-1a fingerprint of the model's *shape* (sense, variable names,
//! integrality pattern) — is the strict choice: entries only ever match a
//! structurally identical model. Callers whose models *drift* between
//! solves (the placement MILP gains and loses candidate variables as cut
//! channels move) should instead key on the stable identity of the
//! underlying problem and record [`WarmStart::var_names`]; at lookup time
//! [`WarmStart::remap_to`] translates the entry onto the new model's
//! variable space by *name*. Loose keying is safe because nothing in an
//! entry is ever trusted blindly:
//!
//! * the **basis** is adopted only if it still refactors to a usable
//!   (primal- or dual-feasible) point of the new model ([`WarmBasis`]
//!   docs) — a stale basis costs one failed refactorization, never a
//!   wrong answer;
//! * the **incumbent** is replayed against the new model's bounds and rows
//!   and silently dropped if anything violates.
//!
//! Entries are only ever replaced by newer solves under the same key, so
//! the store stays bounded by the number of distinct keys a flow produces
//! (one, for a fixed kernel).

use crate::model::Model;
use crate::simplex::WarmBasis;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Warm-start payload for [`Model::solve_warm`](crate::Model::solve_warm).
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WarmStart {
    /// Root basis of a previous solve (adopted only after revalidation).
    pub basis: Option<WarmBasis>,
    /// Incumbent values of a previous solve, in original variable space
    /// (seeded only if still feasible for the new model).
    pub incumbent: Option<Vec<f64>>,
    /// Variable names of the model this entry was recorded on, in column
    /// order. When present, [`WarmStart::remap_to`] can translate the
    /// basis and incumbent onto a model whose variable set has drifted.
    pub var_names: Option<Vec<String>>,
}

impl WarmStart {
    /// Translates this warm start onto `model`'s variable space.
    ///
    /// With no recorded [`var_names`](WarmStart::var_names), or names
    /// identical to `model`'s, the entry is returned unchanged. Otherwise
    /// structural columns are matched *by name*: the incumbent keeps
    /// matched values (variables new to `model` start at their lower
    /// bound), and the basis keeps matched structural columns while slack
    /// columns and vanished variables are rewritten to an out-of-range
    /// sentinel that basis adoption replaces with the row's natural
    /// column. A remapped entry is revalidated by the solver exactly like
    /// a same-shape one (refactorization, then feasibility gates), so the
    /// worst case of a bad match is one wasted refactorization.
    pub fn remap_to(&self, model: &Model) -> WarmStart {
        let Some(names) = &self.var_names else {
            return self.clone();
        };
        if names.len() == model.vars.len()
            && names.iter().zip(&model.vars).all(|(n, v)| *n == v.name)
        {
            return self.clone();
        }
        let old_index: HashMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let new_index: HashMap<&str, usize> = model
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect();
        let n_new = model.vars.len();
        let incumbent = self.incumbent.as_ref().map(|old| {
            model
                .vars
                .iter()
                .map(|v| match old_index.get(v.name.as_str()) {
                    Some(&i) if i < old.len() => old[i],
                    _ if v.lo.is_finite() => v.lo,
                    _ => 0.0,
                })
                .collect()
        });
        let basis = self.basis.as_ref().map(|wb| {
            let old_n = names.len();
            let mapped = wb
                .basis
                .iter()
                .map(|&c| match names.get(c).filter(|_| c < old_n) {
                    // Same variable, possibly at a new column.
                    Some(name) => *new_index.get(name.as_str()).unwrap_or(&n_new),
                    // Slack or artificial: no cross-model identity.
                    None => n_new,
                })
                .collect();
            WarmBasis {
                rows: wb.rows,
                cols: n_new,
                basis: mapped,
            }
        });
        WarmStart {
            basis,
            incumbent,
            var_names: Some(model.vars.iter().map(|v| v.name.clone()).collect()),
        }
    }
}

/// Fingerprint of a model's shape: optimization sense, variable count,
/// per-variable name and integrality. FNV-1a over that byte stream —
/// deterministic across runs and platforms, independent of objective
/// coefficients, bounds, and constraint data (which drift between
/// iterations and are revalidated at adoption time instead).
pub fn shape_key(model: &Model) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    eat(match model.sense {
        crate::Sense::Maximize => 1,
        crate::Sense::Minimize => 2,
    });
    for b in (model.vars.len() as u64).to_le_bytes() {
        eat(b);
    }
    for v in &model.vars {
        for b in v.name.as_bytes() {
            eat(*b);
        }
        eat(0xff); // name terminator, so "ab"+"c" != "a"+"bc"
        eat(v.integer as u8);
    }
    h
}

#[derive(Debug, Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A shape-keyed warm-start store shared across solves (and threads) of
/// one flow run.
///
/// `get` counts a hit or miss; `put` records the latest solve's basis and
/// incumbent under the model's key, replacing any previous entry of the
/// same shape.
#[derive(Debug, Default)]
pub struct MilpWarmStore {
    entries: Mutex<HashMap<u64, WarmStart>>,
    stats: Stats,
}

impl MilpWarmStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the warm start recorded for `key`, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<WarmStart> {
        let found = self
            .entries
            .lock()
            .expect("warm store poisoned")
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records (or replaces) the warm start for `key`.
    pub fn put(&self, key: u64, warm: WarmStart) {
        self.entries
            .lock()
            .expect("warm store poisoned")
            .insert(key, warm);
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    /// Number of stored shapes.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("warm store poisoned").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters keep accumulating).
    pub fn clear(&self) {
        self.entries.lock().expect("warm store poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Sense};

    fn toy(obj: f64) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", obj);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m
    }

    #[test]
    fn shape_key_ignores_numeric_data_but_not_structure() {
        // Same structure, different objective: same key.
        assert_eq!(shape_key(&toy(1.0)), shape_key(&toy(7.5)));
        // Different variable name: different key.
        let mut other = Model::new(Sense::Maximize);
        other.add_binary("z", 1.0);
        other.add_binary("y", 1.0);
        assert_ne!(shape_key(&toy(1.0)), shape_key(&other));
        // Different integrality: different key.
        let mut relaxed = Model::new(Sense::Maximize);
        relaxed.add_var("x", 0.0, 1.0, 1.0, false);
        relaxed.add_var("y", 0.0, 1.0, 1.0, true);
        assert_ne!(shape_key(&toy(1.0)), shape_key(&relaxed));
    }

    #[test]
    fn store_counts_hits_and_misses() {
        let store = MilpWarmStore::new();
        let key = shape_key(&toy(1.0));
        assert!(store.get(key).is_none());
        assert_eq!(store.misses(), 1);
        store.put(
            key,
            WarmStart {
                basis: None,
                incumbent: Some(vec![1.0, 0.0]),
                var_names: None,
            },
        );
        let got = store.get(key).expect("stored entry");
        assert_eq!(got.incumbent.as_deref(), Some(&[1.0, 0.0][..]));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn warm_solve_with_stored_start_matches_cold() {
        let store = MilpWarmStore::new();
        let m = toy(3.0);
        let key = shape_key(&m);
        let cold = m.solve().unwrap();
        store.put(
            key,
            WarmStart {
                basis: cold.root_basis.clone(),
                incumbent: Some(cold.values.clone()),
                var_names: None,
            },
        );
        let warm = m
            .solve_warm(store.get(key).as_ref())
            .expect("warm solve succeeds");
        assert!(warm.warm_used, "stored basis of the same model must adopt");
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(
            warm.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            cold.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
