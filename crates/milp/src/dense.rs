//! Legacy dense two-phase tableau simplex.
//!
//! The original LP engine, kept selectable via
//! [`Engine::DenseTableau`](crate::Engine) as the measured baseline for
//! the sparse revised engine in [`crate::simplex`] and as the oracle for
//! the equivalence test suite (`tests/milp_equivalence.rs`). Every pivot
//! rewrites the full `m × ncols` tableau, so it scales poorly on the
//! buffer-placement models, but its small, transparent implementation is
//! easy to trust.
//!
//! Row construction is shared with the sparse engine through
//! [`prepare`](crate::simplex::prepare), so both engines solve literally
//! the same shifted system. Pricing is Dantzig's rule with the same
//! Bland anti-cycling fallback and per-phase iteration valve.

use crate::model::{Cmp, Model, SolveError};
use crate::simplex::{prepare, BoundOverrides, LpSolution, EPS, MAX_SIMPLEX_ITERS};

/// Consecutive degenerate (zero-improvement) pivots tolerated under
/// Dantzig pricing before switching to Bland's anti-cycling rule.
const DEGENERATE_STREAK: u32 = 50;

/// Solves the LP relaxation of `model` with `overrides` applied.
pub(crate) fn solve_lp_dense(
    model: &Model,
    overrides: &BoundOverrides,
) -> Result<LpSolution, SolveError> {
    solve_lp_dense_with_limit(model, overrides, MAX_SIMPLEX_ITERS)
}

/// [`solve_lp_dense`] with an explicit per-phase iteration valve.
pub(crate) fn solve_lp_dense_with_limit(
    model: &Model,
    overrides: &BoundOverrides,
    max_iters: u64,
) -> Result<LpSolution, SolveError> {
    let prep = prepare(model, overrides)?;
    let n = prep.n;

    // Build the tableau: columns = n structural + slacks + artificials.
    let m = prep.rows.len();
    let mut num_slack = 0usize;
    for r in &prep.rows {
        if r.op != Cmp::Eq {
            num_slack += 1;
        }
    }
    let total_pre_art = n + num_slack;

    // First normalize rhs >= 0 (flip rows with negative rhs).
    // a: m x (total columns incl. artificials), built incrementally.
    let mut a = vec![vec![0.0f64; total_pre_art]; m];
    let mut b = vec![0.0f64; m];
    let mut slack_idx = 0usize;
    let mut slack_col_of_row: Vec<Option<usize>> = vec![None; m];
    for (i, r) in prep.rows.iter().enumerate() {
        let flip = r.rhs < 0.0;
        let s = if flip { -1.0 } else { 1.0 };
        for &(v, coef) in &r.coeffs {
            a[i][v] += s * coef;
        }
        b[i] = s * r.rhs;
        match r.op {
            Cmp::Le => {
                let col = n + slack_idx;
                a[i][col] = s; // slack (+1) flips with the row
                slack_col_of_row[i] = Some(col);
                slack_idx += 1;
            }
            Cmp::Ge => {
                let col = n + slack_idx;
                a[i][col] = -s; // surplus
                slack_col_of_row[i] = Some(col);
                slack_idx += 1;
            }
            Cmp::Eq => {}
        }
    }

    // Choose initial basis: slack column if it has +1 in the row, otherwise
    // an artificial variable.
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::new();
    let mut ncols = total_pre_art;
    for i in 0..m {
        match slack_col_of_row[i] {
            Some(col) if a[i][col] > 0.5 => basis[i] = col,
            _ => {
                for row in a.iter_mut() {
                    row.push(0.0);
                }
                a[i][ncols] = 1.0;
                basis[i] = ncols;
                art_cols.push(ncols);
                ncols += 1;
            }
        }
    }

    // Phase 1: maximize -(sum of artificials).
    let mut pivots = 0u64;
    if !art_cols.is_empty() {
        let mut c1 = vec![0.0f64; ncols];
        for &col in &art_cols {
            c1[col] = -1.0;
        }
        let (z, truncated) = run_simplex(&mut a, &mut b, &mut basis, &c1, &mut pivots, max_iters)?;
        if truncated {
            // An unfinished phase 1 cannot certify feasibility; there is
            // no usable incumbent to hand back.
            return Err(SolveError::NodeLimit);
        }
        if z < -1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Pivot any artificial variables out of the basis if possible.
        for i in 0..m {
            if art_cols.contains(&basis[i]) {
                let pivot_col = (0..total_pre_art).find(|&j| a[i][j].abs() > EPS);
                if let Some(j) = pivot_col {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                    pivots += 1;
                }
                // Rows still basic in an artificial are redundant (zero).
            }
        }
    }

    // Phase 2: real objective; artificial columns fixed at zero by
    // zeroing their coefficients and never letting them enter (their
    // objective coefficient is hugely negative).
    let mut c2 = vec![0.0f64; ncols];
    c2[..n].copy_from_slice(&prep.obj[..n]);
    for &col in &art_cols {
        c2[col] = -1e18;
    }
    let (z, truncated) = run_simplex(&mut a, &mut b, &mut basis, &c2, &mut pivots, max_iters)?;

    let mut values = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            values[basis[i]] = b[i];
        }
    }
    for (v, l) in values.iter_mut().zip(&prep.lo) {
        *v += l;
    }
    let objective = prep.sign * (z + prep.obj_shift);
    Ok(LpSolution {
        values,
        objective,
        pivots,
        dual_pivots: 0,
        refactors: 0,
        truncated,
        basis: None,
        warmed: false,
    })
}

/// Runs primal simplex (maximization) on the tableau; returns the objective
/// value in the shifted space and whether the iteration valve fired before
/// optimality (`true` means the basis is feasible but possibly suboptimal).
fn run_simplex(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    basis: &mut [usize],
    c: &[f64],
    pivots: &mut u64,
    max_iters: u64,
) -> Result<(f64, bool), SolveError> {
    let m = a.len();
    let ncols = c.len();
    // Maintain the reduced-cost row explicitly: red[j] = c_j − c_B B⁻¹ A_j.
    // The tableau is kept in canonical form, so the initial row is computed
    // once and updated with every pivot (O(n) per iteration).
    let mut red: Vec<f64> = (0..ncols)
        .map(|j| {
            let mut r = c[j];
            for i in 0..m {
                let cb = c[basis[i]];
                if cb != 0.0 {
                    r -= cb * a[i][j];
                }
            }
            r
        })
        .collect();
    let objective = |basis: &[usize], b: &[f64]| (0..m).map(|i| c[basis[i]] * b[i]).sum::<f64>();
    let mut iterations = 0u64;
    // Dantzig pricing cycles on degenerate vertices (Beale's example); after
    // DEGENERATE_STREAK consecutive zero-improvement pivots switch to
    // Bland's rule, which cannot cycle, until the objective strictly moves.
    let mut degenerate_streak = 0u32;
    loop {
        iterations += 1;
        if iterations > max_iters {
            return Ok((objective(basis, b), true));
        }
        let j = if degenerate_streak >= DEGENERATE_STREAK {
            // Bland: first improving column.
            (0..ncols).find(|&j| red[j] > 1e-7)
        } else {
            // Dantzig: most positive reduced cost, lowest index on ties.
            let mut best_j = None;
            let mut best_r = 1e-7;
            for (j, &r) in red.iter().enumerate() {
                if r > best_r {
                    best_r = r;
                    best_j = Some(j);
                }
            }
            best_j
        };
        let Some(j) = j else {
            return Ok((objective(basis, b), false));
        };
        // Ratio test (smallest basis index tie-break, as in Bland's rule).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if a[i][j] > EPS {
                let ratio = b[i] / a[i][j];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return Err(SolveError::Unbounded);
        };
        if best <= EPS {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        pivot(a, b, basis, i, j);
        *pivots += 1;
        // Update reduced costs: red -= red[j] * (pivoted row i).
        let factor = red[j];
        if factor.abs() > EPS {
            for (r, s) in red.iter_mut().zip(a[i].iter()) {
                *r -= factor * s;
            }
        }
        red[j] = 0.0;
    }
}

fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let m = a.len();
    let piv = a[row][col];
    debug_assert!(piv.abs() > EPS, "zero pivot");
    let inv = 1.0 / piv;
    for x in a[row].iter_mut() {
        *x *= inv;
    }
    b[row] *= inv;
    for i in 0..m {
        if i != row {
            let factor = a[i][col];
            if factor.abs() > EPS {
                let (src, dst) = if i < row {
                    let (lo_part, hi_part) = a.split_at_mut(row);
                    (&hi_part[0], &mut lo_part[i])
                } else {
                    let (lo_part, hi_part) = a.split_at_mut(i);
                    (&lo_part[row], &mut hi_part[0])
                };
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d -= factor * s;
                }
                b[i] -= factor * b[row];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn dense_baseline_still_solves() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let lp = solve_lp_dense(&m, &BoundOverrides::default()).unwrap();
        assert!((lp.objective - 12.0).abs() < 1e-6);
        assert!(!lp.truncated);
    }

    #[test]
    fn dense_truncation_is_honest() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0, 1.0, false);
        let y = m.add_var("y", 0.0, 4.0, 1.0, false);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 6.0);
        let lp = solve_lp_dense_with_limit(&m, &BoundOverrides::default(), 1).unwrap();
        assert!(lp.truncated);
        assert!(lp.values[0] + lp.values[1] <= 6.0 + 1e-9);
    }
}
