//! Property tests: branch & bound must agree with brute-force enumeration
//! on random small pure-binary programs, and LP solutions must be feasible.

use milp::{Cmp, Model, Sense, Status};
use proptest::prelude::*;

/// A random binary program: `n` binary vars, objective coefficients, and a
/// handful of ≤/≥ constraints with small integer coefficients.
#[derive(Debug, Clone)]
struct BinaryProgram {
    n: usize,
    obj: Vec<i8>,
    rows: Vec<(Vec<i8>, bool /* is_le */, i8)>,
}

fn program() -> impl Strategy<Value = BinaryProgram> {
    (2usize..7).prop_flat_map(|n| {
        (
            prop::collection::vec(-5i8..6, n),
            prop::collection::vec(
                (prop::collection::vec(-3i8..4, n), any::<bool>(), -2i8..7),
                0..5,
            ),
        )
            .prop_map(move |(obj, rows)| BinaryProgram { n, obj, rows })
    })
}

fn brute_force(p: &BinaryProgram) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << p.n) {
        let x = |i: usize| ((mask >> i) & 1) as f64;
        let feasible = p.rows.iter().all(|(coef, is_le, rhs)| {
            let lhs: f64 = coef.iter().enumerate().map(|(i, &c)| c as f64 * x(i)).sum();
            if *is_le {
                lhs <= *rhs as f64 + 1e-9
            } else {
                lhs >= *rhs as f64 - 1e-9
            }
        });
        if feasible {
            let v: f64 = p
                .obj
                .iter()
                .enumerate()
                .map(|(i, &c)| c as f64 * x(i))
                .sum();
            best = Some(best.map(|b: f64| b.max(v)).unwrap_or(v));
        }
    }
    best
}

fn to_model(p: &BinaryProgram) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..p.n)
        .map(|i| m.add_binary(format!("x{i}"), p.obj[i] as f64))
        .collect();
    for (coef, is_le, rhs) in &p.rows {
        let terms: Vec<_> = vars
            .iter()
            .zip(coef)
            .filter(|(_, &c)| c != 0)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        if terms.is_empty() {
            continue;
        }
        let op = if *is_le { Cmp::Le } else { Cmp::Ge };
        m.add_constraint(terms, op, *rhs as f64);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bnb_matches_brute_force(p in program()) {
        let m = to_model(&p);
        // Drop rows that became empty (they never constrain the model but
        // do constrain the brute force when infeasible with zero lhs).
        let brute = {
            let filtered = BinaryProgram {
                rows: p.rows.iter().filter(|(c, _, _)| c.iter().any(|&x| x != 0)).cloned().collect(),
                ..p.clone()
            };
            brute_force(&filtered)
        };
        match (m.solve(), brute) {
            (Ok(sol), Some(best)) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective, best);
            }
            (Err(e), None) if e.is_infeasible() => {}
            (got, want) => prop_assert!(false, "solver {got:?} vs brute force {want:?}"),
        }
    }

    #[test]
    fn solutions_are_feasible(p in program()) {
        let m = to_model(&p);
        if let Ok(sol) = m.solve() {
            for (coef, is_le, rhs) in &p.rows {
                if coef.iter().all(|&c| c == 0) {
                    continue;
                }
                let lhs: f64 = coef
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c as f64 * sol.values[i])
                    .sum();
                if *is_le {
                    prop_assert!(lhs <= *rhs as f64 + 1e-6);
                } else {
                    prop_assert!(lhs >= *rhs as f64 - 1e-6);
                }
            }
            for v in &sol.values {
                prop_assert!((v - v.round()).abs() < 1e-6, "binary var fractional: {v}");
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(v));
            }
        }
    }

    #[test]
    fn relaxation_bounds_the_integer_optimum(p in program()) {
        let m = to_model(&p);
        if let (Ok(int), Ok(lp)) = (m.solve(), m.solve_relaxation()) {
            prop_assert!(lp.objective >= int.objective - 1e-6,
                "LP {} below MILP {}", lp.objective, int.objective);
        }
    }
}
