//! BLIF (Berkeley Logic Interchange Format) export and import.
//!
//! The paper's flow moves circuits between tools as BLIF (ODIN-II emits
//! it, ABC consumes it). This module round-trips our netlists through the
//! same format: gates become `.names` cover lines, flip-flops become
//! `.latch` entries (clock-enabled registers are expanded to a latch plus
//! a recirculation `.names` mux, the standard BLIF encoding), and keeps
//! become `.outputs`.

use crate::gate::{GateId, GateKind, Origin};
use crate::netgraph::Netlist;
use dataflow::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors from BLIF parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum BlifError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A signal was referenced but never defined.
    UndefinedSignal(String),
    /// `.names` with more inputs than the reader supports (8).
    TooManyInputs {
        /// 1-based line number.
        line: usize,
        /// Number of inputs found.
        inputs: usize,
    },
    /// A signal is driven by more than one definition (two `.names`
    /// outputs, two `.latch` outputs, or a definition colliding with an
    /// `.inputs` declaration). The reader used to panic (or silently keep
    /// the last definition) on such files.
    Redefined {
        /// 1-based line number of the offending (later) definition.
        line: usize,
        /// The multiply-driven signal.
        signal: String,
    },
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::Io(e) => write!(f, "blif i/o error: {e}"),
            BlifError::Syntax { line, message } => {
                write!(f, "blif syntax error at line {line}: {message}")
            }
            BlifError::UndefinedSignal(s) => write!(f, "undefined signal {s:?}"),
            BlifError::TooManyInputs { line, inputs } => {
                write!(f, "line {line}: .names with {inputs} inputs (max 8)")
            }
            BlifError::Redefined { line, signal } => {
                write!(f, "line {line}: signal {signal:?} is already driven")
            }
        }
    }
}

impl std::error::Error for BlifError {}

impl From<io::Error> for BlifError {
    fn from(e: io::Error) -> Self {
        BlifError::Io(e)
    }
}

fn sig(id: GateId) -> String {
    format!("n{}", id.index())
}

/// Writes the live portion of `nl` as a BLIF model named `model`.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_blif<W: Write>(nl: &Netlist, model: &str, mut w: W) -> io::Result<()> {
    let live = nl.live_mask();
    writeln!(w, ".model {model}")?;
    let inputs: Vec<String> = nl
        .gates()
        .filter(|(id, g)| live[id.index()] && g.kind() == GateKind::Input)
        .map(|(id, _)| sig(id))
        .collect();
    writeln!(w, ".inputs {}", inputs.join(" "))?;
    let outputs: Vec<String> = nl.keeps().iter().map(|(g, _)| sig(*g)).collect();
    writeln!(w, ".outputs {}", outputs.join(" "))?;
    for (id, g) in nl.gates() {
        if !live[id.index()] {
            continue;
        }
        let f = |i: usize| sig(g.fanin()[i]);
        match g.kind() {
            GateKind::Const(v) => {
                writeln!(w, ".names {}", sig(id))?;
                if v {
                    writeln!(w, "1")?;
                }
            }
            GateKind::Input => {}
            GateKind::Alias => {
                writeln!(w, ".names {} {}", f(0), sig(id))?;
                writeln!(w, "1 1")?;
            }
            GateKind::Not => {
                writeln!(w, ".names {} {}", f(0), sig(id))?;
                writeln!(w, "0 1")?;
            }
            GateKind::And => {
                writeln!(w, ".names {} {} {}", f(0), f(1), sig(id))?;
                writeln!(w, "11 1")?;
            }
            GateKind::Or => {
                writeln!(w, ".names {} {} {}", f(0), f(1), sig(id))?;
                writeln!(w, "1- 1")?;
                writeln!(w, "-1 1")?;
            }
            GateKind::Xor => {
                writeln!(w, ".names {} {} {}", f(0), f(1), sig(id))?;
                writeln!(w, "10 1")?;
                writeln!(w, "01 1")?;
            }
            GateKind::Mux => {
                writeln!(w, ".names {} {} {} {}", f(0), f(1), f(2), sig(id))?;
                writeln!(w, "11- 1")?;
                writeln!(w, "0-1 1")?;
            }
            GateKind::Reg => {
                writeln!(w, ".latch {} {} re clk 0", f(0), sig(id))?;
            }
            GateKind::RegEn => {
                // Expand CE into a recirculation mux: d' = en ? d : q.
                let d_name = format!("{}_d", sig(id));
                writeln!(w, ".names {} {} {} {}", f(0), f(1), sig(id), d_name)?;
                writeln!(w, "11- 1")?;
                writeln!(w, "0-1 1")?;
                writeln!(w, ".latch {d_name} {} re clk 0", sig(id))?;
            }
        }
    }
    writeln!(w, ".end")?;
    Ok(())
}

/// A parsed `.names` cover row.
#[derive(Debug)]
struct Cover {
    inputs: Vec<String>,
    output: String,
    rows: Vec<(Vec<u8>, bool)>, // pattern per input: 0, 1, 2 (= '-')
    line: usize,                // the .names line, for error reporting
}

/// Reads a BLIF model back into a [`Netlist`].
///
/// Supports the subset this crate writes plus arbitrary `.names` covers of
/// up to 8 inputs (synthesized as AND/OR/NOT sums of products) and
/// `.latch` lines. Keeps are recreated from `.outputs`.
///
/// # Errors
///
/// [`BlifError`] on malformed input.
pub fn read_blif<R: BufRead>(r: R) -> Result<Netlist, BlifError> {
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();
    let mut latches: Vec<(String, String, usize)> = Vec::new(); // (d, q, line)

    // Tokenize with continuation handling.
    let mut lines: Vec<(usize, String)> = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some((_, prev)) = lines.last_mut() {
            if prev.ends_with('\\') {
                prev.pop();
                prev.push(' ');
                prev.push_str(&line);
                continue;
            }
        }
        lines.push((i + 1, line));
    }

    let mut idx = 0;
    while idx < lines.len() {
        let (lineno, line) = &lines[idx];
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some(".model") | Some(".end") => idx += 1,
            Some(".inputs") => {
                inputs.extend(toks.map(|t| (t.to_string(), *lineno)));
                idx += 1;
            }
            Some(".outputs") => {
                outputs.extend(toks.map(str::to_string));
                idx += 1;
            }
            Some(".latch") => {
                let args: Vec<&str> = toks.collect();
                if args.len() < 2 {
                    return Err(BlifError::Syntax {
                        line: *lineno,
                        message: ".latch needs input and output".into(),
                    });
                }
                latches.push((args[0].to_string(), args[1].to_string(), *lineno));
                idx += 1;
            }
            Some(".names") => {
                let names: Vec<String> = toks.map(str::to_string).collect();
                if names.is_empty() {
                    return Err(BlifError::Syntax {
                        line: *lineno,
                        message: ".names needs at least an output".into(),
                    });
                }
                let (ins, out) = names.split_at(names.len() - 1);
                if ins.len() > 8 {
                    return Err(BlifError::TooManyInputs {
                        line: *lineno,
                        inputs: ins.len(),
                    });
                }
                let mut rows = Vec::new();
                idx += 1;
                while idx < lines.len() && !lines[idx].1.starts_with('.') {
                    let (rl, row) = &lines[idx];
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pattern, value) = match parts.as_slice() {
                        [v] if ins.is_empty() => ("", *v),
                        [p, v] => (*p, *v),
                        _ => {
                            return Err(BlifError::Syntax {
                                line: *rl,
                                message: format!("bad cover row {row:?}"),
                            })
                        }
                    };
                    if pattern.len() != ins.len() {
                        return Err(BlifError::Syntax {
                            line: *rl,
                            message: "pattern width mismatch".into(),
                        });
                    }
                    let pat: Vec<u8> = pattern
                        .chars()
                        .map(|c| match c {
                            '0' => Ok(0),
                            '1' => Ok(1),
                            '-' => Ok(2),
                            other => Err(BlifError::Syntax {
                                line: *rl,
                                message: format!("bad pattern char {other:?}"),
                            }),
                        })
                        .collect::<Result<_, _>>()?;
                    rows.push((pat, value == "1"));
                    idx += 1;
                }
                covers.push(Cover {
                    inputs: ins.to_vec(),
                    output: out[0].clone(),
                    rows,
                    line: *lineno,
                });
            }
            Some(other) => {
                return Err(BlifError::Syntax {
                    line: *lineno,
                    message: format!("unsupported directive {other:?}"),
                })
            }
            None => idx += 1,
        }
    }

    // Build the netlist: declare signals, then wire. Every signal may have
    // exactly one driver — a second definition (or one that collides with
    // an `.inputs` declaration) is rejected with its line number instead
    // of tripping the netlist builder's internal assertions.
    let mut nl = Netlist::new();
    let o = Origin::External;
    let mut net: HashMap<String, GateId> = HashMap::default();
    let mut driven: HashMap<String, usize> = HashMap::default();
    for (name, line) in &inputs {
        if driven.insert(name.clone(), *line).is_some() {
            return Err(BlifError::Redefined {
                line: *line,
                signal: name.clone(),
            });
        }
        let g = nl.input(o);
        net.insert(name.clone(), g);
    }
    // Latch outputs exist before their D cones (forward references).
    for (_, q, line) in &latches {
        if driven.insert(q.clone(), *line).is_some() {
            return Err(BlifError::Redefined {
                line: *line,
                signal: q.clone(),
            });
        }
        let zero = nl.constant(false);
        let g = nl.reg(zero, o);
        net.insert(q.clone(), g);
    }
    // Cover outputs become forward aliases so arbitrary order works.
    for c in &covers {
        if driven.insert(c.output.clone(), c.line).is_some() {
            return Err(BlifError::Redefined {
                line: c.line,
                signal: c.output.clone(),
            });
        }
        let alias = nl.forward_alias(o);
        net.insert(c.output.clone(), alias);
    }
    let lookup = |net: &HashMap<String, GateId>, name: &str| -> Result<GateId, BlifError> {
        net.get(name)
            .copied()
            .ok_or_else(|| BlifError::UndefinedSignal(name.to_string()))
    };
    for c in &covers {
        let ins: Vec<GateId> = c
            .inputs
            .iter()
            .map(|n| lookup(&net, n))
            .collect::<Result<_, _>>()?;
        // Sum of products over the on-set rows.
        let mut products = Vec::new();
        for (pat, value) in &c.rows {
            if !value {
                continue; // off-set rows are ignored (BLIF on-set semantics)
            }
            let mut lits = Vec::new();
            for (bit, &p) in pat.iter().enumerate() {
                match p {
                    0 => {
                        let n = nl.not(ins[bit], o);
                        lits.push(n);
                    }
                    1 => lits.push(ins[bit]),
                    _ => {}
                }
            }
            products.push(nl.and_tree(&lits, o));
        }
        let value = nl.or_tree(&products, o);
        let alias = net[&c.output];
        nl.bind_alias(alias, value);
    }
    for (d, q, _) in &latches {
        let dg = lookup(&net, d)?;
        let qg = net[q];
        nl.rebind_reg(qg, dg);
    }
    for (i, name) in outputs.iter().enumerate() {
        let g = lookup(&net, name)?;
        nl.add_keep(g, format!("out{i}:{name}"));
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistSim;

    fn roundtrip(nl: &Netlist) -> Netlist {
        let mut buf = Vec::new();
        write_blif(nl, "t", &mut buf).expect("write");
        read_blif(io::BufReader::new(buf.as_slice())).expect("read")
    }

    #[test]
    fn combinational_round_trip_is_equivalent() {
        let o = Origin::External;
        let mut nl = Netlist::new();
        let a = nl.input(o);
        let b = nl.input(o);
        let c = nl.input(o);
        let x = nl.xor(a, b, o);
        let m = nl.mux(c, x, a, o);
        let n = nl.not(m, o);
        nl.add_keep(n, "out");
        let back = roundtrip(&nl);

        // Identify the reader's inputs in declaration order (a, b, c).
        let ins: Vec<GateId> = back
            .gates()
            .filter(|(_, g)| g.kind() == GateKind::Input)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(ins.len(), 3);
        let mut sim1 = NetlistSim::new(&nl).unwrap();
        let mut sim2 = NetlistSim::new(&back).unwrap();
        for v in 0..8u8 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            sim1.set_input(a, bits[0]);
            sim1.set_input(b, bits[1]);
            sim1.set_input(c, bits[2]);
            for (g, &bit) in ins.iter().zip(&bits) {
                sim2.set_input(*g, bit);
            }
            sim1.settle();
            sim2.settle();
            let o1: Vec<bool> = sim1.observe().iter().map(|(_, v)| *v).collect();
            let o2: Vec<bool> = sim2.observe().iter().map(|(_, v)| *v).collect();
            assert_eq!(o1, o2, "vector {v:03b}");
        }
    }

    #[test]
    fn sequential_round_trip_preserves_latches() {
        let o = Origin::External;
        let mut nl = Netlist::new();
        let a = nl.input(o);
        let r = nl.reg(a, o);
        let en = nl.input(o);
        let re = nl.reg_en(en, r, o);
        nl.add_keep(re, "out");
        let back = roundtrip(&nl);
        // One plain latch + one expanded CE latch = 2 latches.
        let regs = back
            .gates()
            .filter(|(_, g)| g.kind() == GateKind::Reg)
            .count();
        assert_eq!(regs, 2);
    }

    #[test]
    fn constants_round_trip() {
        let o = Origin::External;
        let mut nl = Netlist::new();
        let one = nl.constant(true);
        let zero = nl.constant(false);
        let g = nl.or(one, zero, o);
        nl.add_keep(g, "out");
        let back = roundtrip(&nl);
        let mut sim = NetlistSim::new(&back).unwrap();
        sim.settle();
        assert!(sim.observe()[0].1);
    }

    #[test]
    fn rejects_garbage() {
        let src = ".model x\n.frobnicate y\n.end\n";
        assert!(matches!(
            read_blif(io::BufReader::new(src.as_bytes())),
            Err(BlifError::Syntax { .. })
        ));
    }

    #[test]
    fn rejects_cover_redefining_an_input() {
        // Used to panic in bind_alias ("target must be an alias").
        let src = ".model x\n.inputs a b\n.outputs a\n.names b a\n1 1\n.end\n";
        match read_blif(io::BufReader::new(src.as_bytes())) {
            Err(BlifError::Redefined { line, signal }) => {
                assert_eq!(line, 4);
                assert_eq!(signal, "a");
            }
            other => panic!("expected Redefined, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_cover_outputs() {
        // Used to silently discard the first cover's logic.
        let src = "\
.model x
.inputs a b
.outputs y
.names a y
1 1
.names b y
1 1
.end
";
        match read_blif(io::BufReader::new(src.as_bytes())) {
            Err(BlifError::Redefined { line, signal }) => {
                assert_eq!(line, 6);
                assert_eq!(signal, "y");
            }
            other => panic!("expected Redefined, got {other:?}"),
        }
    }

    #[test]
    fn rejects_latch_redefining_an_input() {
        // Used to panic in rebind_reg ("target must be a register").
        let src = ".model x\n.inputs a\n.outputs a\n.latch a a re clk 0\n.end\n";
        match read_blif(io::BufReader::new(src.as_bytes())) {
            Err(BlifError::Redefined { line, signal }) => {
                assert_eq!(line, 4);
                assert_eq!(signal, "a");
            }
            other => panic!("expected Redefined, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_latch_outputs() {
        let src = "\
.model x
.inputs a b
.outputs q
.latch a q re clk 0
.latch b q re clk 0
.end
";
        match read_blif(io::BufReader::new(src.as_bytes())) {
            Err(BlifError::Redefined { line, signal }) => {
                assert_eq!(line, 5);
                assert_eq!(signal, "q");
            }
            other => panic!("expected Redefined, got {other:?}"),
        }
    }

    #[test]
    fn rejects_cover_redefining_a_latch_output() {
        let src = "\
.model x
.inputs a
.outputs q
.latch a q re clk 0
.names a q
1 1
.end
";
        assert!(matches!(
            read_blif(io::BufReader::new(src.as_bytes())),
            Err(BlifError::Redefined { line: 5, .. })
        ));
    }

    #[test]
    fn reads_multi_input_sop() {
        let src = "\
.model sop
.inputs a b c
.outputs y
.names a b c y
1-0 1
011 1
.end
";
        let nl = read_blif(io::BufReader::new(src.as_bytes())).expect("parses");
        let ins: Vec<GateId> = nl
            .gates()
            .filter(|(_, g)| g.kind() == GateKind::Input)
            .map(|(id, _)| id)
            .collect();
        let mut sim = NetlistSim::new(&nl).unwrap();
        for v in 0..8u8 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            for (g, &bit) in ins.iter().zip(&bits) {
                sim.set_input(*g, bit);
            }
            sim.settle();
            let expected = (bits[0] && !bits[2]) || (!bits[0] && bits[1] && bits[2]);
            assert_eq!(sim.observe()[0].1, expected, "vector {v:03b}");
        }
    }

    #[test]
    fn elaborated_kernel_exports_cleanly() {
        // A realistic end-to-end check: elaborate a small dataflow graph,
        // optimize, export, re-import, and make sure the model parses with
        // the same number of latches.
        use dataflow::{Graph, PortRef, UnitKind};
        let mut g = Graph::new("t");
        let bb = g.add_basic_block("bb0");
        let e = g.add_unit(UnitKind::Entry, "e", bb, 0).unwrap();
        let x = g.add_unit(UnitKind::Exit, "x", bb, 0).unwrap();
        g.connect(PortRef::new(e, 0), PortRef::new(x, 0)).unwrap();
        let mut nl = crate::elaborate(&g).unwrap().netlist;
        nl.optimize();
        let before_regs = nl.num_live_regs();
        let back = roundtrip(&nl);
        assert!(back.num_live_regs() >= before_regs);
    }
}
