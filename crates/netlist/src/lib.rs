//! Gate-level netlists for dataflow circuits.
//!
//! This crate is the logic-synthesis substrate of the reproduction: it plays
//! the role ODIN-II + Yosys play in the paper's flow. It elaborates every
//! dataflow unit (handshake control *and* datapath) into a network of simple
//! gates with *provenance* — each gate remembers which dataflow unit or
//! channel it came from — and then optimizes the network with the classic
//! structural rewrites (constant propagation, identities, double negation,
//! structural hashing, dead-gate sweep).
//!
//! Cross-unit optimization is the phenomenon the paper is built around
//! (Figure 1: a join's AND gate merging into the neighbouring forks'
//! logic); it emerges here naturally because the optimizer hashes and
//! rewrites gates without regard to unit boundaries, and the downstream
//! LUT mapper packs the surviving gates into LUTs that may span units.
//!
//! # Example
//!
//! ```
//! use dataflow::{Graph, UnitKind, PortRef};
//! use netlist::elaborate;
//!
//! # fn main() -> Result<(), dataflow::GraphError> {
//! let mut g = Graph::new("tiny");
//! let bb = g.add_basic_block("bb0");
//! let e = g.add_unit(UnitKind::Entry, "e", bb, 0)?;
//! let x = g.add_unit(UnitKind::Exit, "x", bb, 0)?;
//! g.connect(PortRef::new(e, 0), PortRef::new(x, 0))?;
//! g.validate()?;
//! let mut nl = elaborate(&g).unwrap().netlist;
//! nl.optimize();
//! assert!(nl.num_live_gates() > 0);
//! # Ok(())
//! # }
//! ```

mod blif;
pub mod datapath;
mod elaborate;
mod gate;
mod isolate;
mod matching;
mod netgraph;
mod opt;
mod simulate;

pub use blif::{read_blif, write_blif, BlifError};
pub use elaborate::{elaborate, ChannelNets, ElaborateError, Elaboration};
pub use gate::{Gate, GateId, GateKind, Origin};
pub use isolate::elaborate_isolated;
pub use matching::{match_netlists, NetlistMatching};
pub use netgraph::Netlist;
pub use opt::OptStats;
pub use simulate::NetlistSim;
