//! The netlist container: gate storage, helpers, liveness and depth queries.

use crate::gate::{Gate, GateId, GateKind, Origin};
use dataflow::collections::HashMap;

/// A gate-level netlist with provenance.
///
/// Gates are append-only; the optimizer rewrites fanins in place and marks
/// dead gates unreachable rather than reindexing, so [`GateId`]s stay
/// stable across optimization. *Keeps* are the observability roots
/// (side-effecting nets such as store commits and the exit handshake):
/// everything not transitively feeding a keep or a live register is dead.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Netlist {
    gates: Vec<Gate>,
    keeps: Vec<(GateId, String)>,
    const_cache: [Option<GateId>; 2],
}

impl Default for Netlist {
    fn default() -> Self {
        Self::new()
    }
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist {
            gates: Vec::new(),
            keeps: Vec::new(),
            const_cache: [None, None],
        }
    }

    /// Adds a gate; `fanin.len()` must equal `kind.arity()`.
    ///
    /// # Panics
    ///
    /// Panics if the fanin count does not match the kind's arity or if a
    /// fanin id is out of range.
    pub fn add_gate(&mut self, kind: GateKind, fanin: Vec<GateId>, origin: Origin) -> GateId {
        assert_eq!(
            fanin.len(),
            kind.arity(),
            "gate kind {kind:?} requires {} fanins, got {}",
            kind.arity(),
            fanin.len()
        );
        for f in &fanin {
            assert!(f.index() < self.gates.len(), "fanin {f} out of range");
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            fanin,
            origin,
        });
        id
    }

    /// Returns (creating on first use) the shared constant gate.
    pub fn constant(&mut self, value: bool) -> GateId {
        if let Some(id) = self.const_cache[value as usize] {
            return id;
        }
        let id = self.add_gate(GateKind::Const(value), vec![], Origin::External);
        self.const_cache[value as usize] = Some(id);
        id
    }

    /// Adds a primary input (timing startpoint).
    pub fn input(&mut self, origin: Origin) -> GateId {
        self.add_gate(GateKind::Input, vec![], origin)
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::Not, vec![a], origin)
    }

    /// Adds a 2-input AND.
    pub fn and(&mut self, a: GateId, b: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::And, vec![a, b], origin)
    }

    /// Adds a 2-input OR.
    pub fn or(&mut self, a: GateId, b: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::Or, vec![a, b], origin)
    }

    /// Adds a 2-input XOR.
    pub fn xor(&mut self, a: GateId, b: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::Xor, vec![a, b], origin)
    }

    /// Adds a 2:1 mux (`sel ? a : b`).
    pub fn mux(&mut self, sel: GateId, a: GateId, b: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::Mux, vec![sel, a, b], origin)
    }

    /// Adds a D flip-flop.
    pub fn reg(&mut self, d: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::Reg, vec![d], origin)
    }

    /// Adds a D flip-flop with clock enable (`[en, d]`).
    pub fn reg_en(&mut self, en: GateId, d: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::RegEn, vec![en, d], origin)
    }

    /// Adds a pass-through alias (removed by optimization).
    pub fn alias(&mut self, a: GateId, origin: Origin) -> GateId {
        self.add_gate(GateKind::Alias, vec![a], origin)
    }

    /// Redirects an existing alias gate to drive from `src`.
    ///
    /// Elaboration creates forward-declared aliases for channel signals and
    /// later binds them to their drivers with this method.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an alias.
    pub fn bind_alias(&mut self, id: GateId, src: GateId) {
        assert_eq!(
            self.gates[id.index()].kind,
            GateKind::Alias,
            "bind_alias target must be an alias"
        );
        self.gates[id.index()].fanin = vec![src];
    }

    /// Adds a forward-declared alias whose driver is bound later.
    ///
    /// Until bound, the alias points at constant 0.
    pub fn forward_alias(&mut self, origin: Origin) -> GateId {
        let zero = self.constant(false);
        self.alias(zero, origin)
    }

    /// Balanced AND over arbitrarily many inputs (empty ⇒ constant 1).
    pub fn and_tree(&mut self, inputs: &[GateId], origin: Origin) -> GateId {
        self.tree(GateKind::And, inputs, true, origin)
    }

    /// Balanced OR over arbitrarily many inputs (empty ⇒ constant 0).
    pub fn or_tree(&mut self, inputs: &[GateId], origin: Origin) -> GateId {
        self.tree(GateKind::Or, inputs, false, origin)
    }

    fn tree(&mut self, kind: GateKind, inputs: &[GateId], neutral: bool, origin: Origin) -> GateId {
        match inputs.len() {
            0 => self.constant(neutral),
            1 => inputs[0],
            _ => {
                let mut level: Vec<GateId> = inputs.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        if pair.len() == 2 {
                            next.push(self.add_gate(kind, vec![pair[0], pair[1]], origin));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Marks a gate as an observability root.
    pub fn add_keep(&mut self, id: GateId, name: impl Into<String>) {
        self.keeps.push((id, name.into()));
    }

    /// The observability roots.
    pub fn keeps(&self) -> &[(GateId, String)] {
        &self.keeps
    }

    pub(crate) fn set_keeps(&mut self, keeps: Vec<(GateId, String)>) {
        self.keeps = keeps;
    }

    /// Looks up a gate.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Total number of gates ever created (including dead ones).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Iterates over all gates (including dead ones).
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Follows alias chains to the real driver of `id`.
    pub fn resolve(&self, mut id: GateId) -> GateId {
        let mut hops = 0usize;
        while self.gates[id.index()].kind == GateKind::Alias {
            id = self.gates[id.index()].fanin[0];
            hops += 1;
            assert!(hops <= self.gates.len(), "alias cycle at {id}");
        }
        id
    }

    pub(crate) fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// Rewires the D input of a register created before its cone existed
    /// (used when importing formats with forward references, e.g. BLIF).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a [`GateKind::Reg`].
    pub fn rebind_reg(&mut self, reg: GateId, d: GateId) {
        assert_eq!(
            self.gates[reg.index()].kind,
            GateKind::Reg,
            "rebind_reg target must be a register"
        );
        self.gates[reg.index()].fanin = vec![d];
    }

    /// Computes the liveness mask: a gate is live if it transitively feeds
    /// a keep (traversal crosses registers, so state machines that feed an
    /// observable stay live in full).
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = self.keeps.iter().map(|(g, _)| *g).collect();
        while let Some(g) = stack.pop() {
            if live[g.index()] {
                continue;
            }
            live[g.index()] = true;
            for &f in &self.gates[g.index()].fanin {
                if !live[f.index()] {
                    stack.push(f);
                }
            }
        }
        live
    }

    /// Number of live gates of any kind.
    pub fn num_live_gates(&self) -> usize {
        self.live_mask().iter().filter(|&&l| l).count()
    }

    /// Number of live registers (the FF cost of the circuit).
    pub fn num_live_regs(&self) -> usize {
        let live = self.live_mask();
        self.gates()
            .filter(|(id, g)| live[id.index()] && g.kind.is_reg())
            .count()
    }

    /// Number of live combinational logic gates (pre-mapping area proxy).
    pub fn num_live_logic(&self) -> usize {
        let live = self.live_mask();
        self.gates()
            .filter(|(id, g)| live[id.index()] && g.kind.is_logic())
            .count()
    }

    /// Topological order of the live combinational logic gates.
    ///
    /// Startpoints (constants, inputs, register outputs) are not included;
    /// each logic gate appears after all of its logic fanins.
    ///
    /// # Errors
    ///
    /// Returns the ids of gates participating in a combinational cycle if
    /// one exists (a dataflow cycle with no opaque buffer).
    pub fn topo_logic(&self) -> Result<Vec<GateId>, Vec<GateId>> {
        let live = self.live_mask();
        let mut indeg = vec![0u32; self.gates.len()];
        let mut order = Vec::new();
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); self.gates.len()];
        let mut n_logic = 0usize;
        for (id, g) in self.gates() {
            if !live[id.index()] || !(g.kind.is_logic() || g.kind == GateKind::Alias) {
                continue;
            }
            n_logic += 1;
            for &f in &g.fanin {
                let fk = self.gates[f.index()].kind;
                if fk.is_logic() || fk == GateKind::Alias {
                    indeg[id.index()] += 1;
                    fanout[f.index()].push(id);
                }
            }
        }
        let mut queue: Vec<GateId> = self
            .gates()
            .filter(|(id, g)| {
                live[id.index()]
                    && (g.kind.is_logic() || g.kind == GateKind::Alias)
                    && indeg[id.index()] == 0
            })
            .map(|(id, _)| id)
            .collect();
        while let Some(g) = queue.pop() {
            order.push(g);
            for &s in &fanout[g.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == n_logic {
            Ok(order)
        } else {
            let stuck = self
                .gates()
                .filter(|(id, g)| {
                    live[id.index()]
                        && (g.kind.is_logic() || g.kind == GateKind::Alias)
                        && indeg[id.index()] > 0
                })
                .map(|(id, _)| id)
                .collect();
            Err(stuck)
        }
    }

    /// Gate-level combinational depth of every gate (startpoints at 0,
    /// each logic gate = 1 + max fanin depth). Pre-mapping diagnostic.
    ///
    /// # Errors
    ///
    /// Propagates combinational cycles from [`Netlist::topo_logic`].
    pub fn gate_depths(&self) -> Result<Vec<u32>, Vec<GateId>> {
        let order = self.topo_logic()?;
        let mut depth = vec![0u32; self.gates.len()];
        for g in order {
            let gate = self.gate(g);
            let d = gate
                .fanin
                .iter()
                .map(|f| depth[f.index()])
                .max()
                .unwrap_or(0);
            depth[g.index()] = if gate.kind.is_logic() { d + 1 } else { d };
        }
        Ok(depth)
    }

    /// Maximum gate-level depth over all live gates.
    ///
    /// # Errors
    ///
    /// Propagates combinational cycles from [`Netlist::topo_logic`].
    pub fn max_gate_depth(&self) -> Result<u32, Vec<GateId>> {
        Ok(self.gate_depths()?.into_iter().max().unwrap_or(0))
    }
}

/// Key for structural hashing: kind + canonicalized fanins.
pub(crate) fn strash_key(g: &Gate) -> (GateKind, Vec<GateId>) {
    let mut fanin = g.fanin.clone();
    if g.kind.is_commutative() {
        fanin.sort_unstable();
    }
    (g.kind, fanin)
}

pub(crate) type StrashMap = HashMap<(GateKind, Vec<GateId>), GateId>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_structure() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let a = nl.input(o);
        let b = nl.input(o);
        let g = nl.and(a, b, o);
        let n = nl.not(g, o);
        let r = nl.reg(n, o);
        nl.add_keep(r, "state");
        assert_eq!(nl.gate(g).kind(), GateKind::And);
        assert_eq!(nl.gate(g).fanin(), &[a, b]);
        assert_eq!(nl.num_live_gates(), 5);
        assert_eq!(nl.num_live_regs(), 1);
        assert_eq!(nl.num_live_logic(), 2);
    }

    #[test]
    fn constants_are_shared() {
        let mut nl = Netlist::new();
        assert_eq!(nl.constant(true), nl.constant(true));
        assert_ne!(nl.constant(true), nl.constant(false));
    }

    #[test]
    fn and_tree_is_balanced() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let ins: Vec<GateId> = (0..8).map(|_| nl.input(o)).collect();
        let root = nl.and_tree(&ins, o);
        nl.add_keep(root, "t");
        // 8 inputs -> 7 AND gates, depth 3.
        assert_eq!(nl.num_live_logic(), 7);
        assert_eq!(nl.max_gate_depth().unwrap(), 3);
    }

    #[test]
    fn empty_trees_are_constants() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let t = nl.and_tree(&[], o);
        let f = nl.or_tree(&[], o);
        assert_eq!(nl.gate(t).kind(), GateKind::Const(true));
        assert_eq!(nl.gate(f).kind(), GateKind::Const(false));
    }

    #[test]
    fn dead_logic_is_not_counted() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let a = nl.input(o);
        let b = nl.input(o);
        let _dead = nl.and(a, b, o);
        let live = nl.or(a, b, o);
        nl.add_keep(live, "out");
        assert_eq!(nl.num_live_logic(), 1);
    }

    #[test]
    fn liveness_crosses_registers() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        // Self-feeding toggler observable at out: r -> not -> r, keep not.
        let r = {
            let zero = nl.constant(false);
            nl.reg(zero, o)
        };
        let n = nl.not(r, o);
        nl.gate_mut(r).fanin = vec![n];
        nl.add_keep(n, "out");
        assert_eq!(nl.num_live_regs(), 1);
        assert_eq!(nl.num_live_logic(), 1);
    }

    #[test]
    fn topo_detects_combinational_cycle() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let a = nl.input(o);
        let g1 = nl.and(a, a, o); // placeholder fanin, patched below
        let g2 = nl.or(g1, a, o);
        nl.gate_mut(g1).fanin = vec![g2, a]; // g1 <-> g2 cycle
        nl.add_keep(g2, "out");
        assert!(nl.topo_logic().is_err());
    }

    #[test]
    fn alias_resolution() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let a = nl.input(o);
        let al1 = nl.forward_alias(o);
        let al2 = nl.alias(al1, o);
        nl.bind_alias(al1, a);
        assert_eq!(nl.resolve(al2), a);
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn wrong_arity_panics() {
        let mut nl = Netlist::new();
        nl.add_gate(GateKind::And, vec![], Origin::External);
    }

    #[test]
    fn depth_of_reg_breaks_path() {
        let mut nl = Netlist::new();
        let o = Origin::External;
        let a = nl.input(o);
        let g1 = nl.not(a, o);
        let r = nl.reg(g1, o);
        let g2 = nl.not(r, o);
        nl.add_keep(g2, "out");
        let depths = nl.gate_depths().unwrap();
        assert_eq!(depths[g1.index()], 1);
        assert_eq!(depths[r.index()], 0); // startpoint resets depth
        assert_eq!(depths[g2.index()], 1);
    }
}
