//! Cycle-accurate functional simulation of a netlist.
//!
//! Used for equivalence property tests: the logic optimizer and the LUT
//! mapper must preserve the observable behaviour of the circuit, and this
//! simulator is the oracle.

use crate::gate::{GateId, GateKind};
use crate::netgraph::Netlist;

/// A two-phase (evaluate, clock) simulator over a [`Netlist`].
///
/// Registers reset to 0. Primary inputs are set per cycle with
/// [`NetlistSim::set_input`]; unset inputs read 0.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, NetlistSim, Origin};
///
/// let mut nl = Netlist::new();
/// let a = nl.input(Origin::External);
/// let n = nl.not(a, Origin::External);
/// let r = nl.reg(n, Origin::External);
/// nl.add_keep(r, "out");
/// let mut sim = NetlistSim::new(&nl).expect("acyclic");
/// sim.set_input(a, false);
/// sim.step();
/// assert!(sim.peek(r)); // registered !0 = 1
/// ```
#[derive(Debug)]
pub struct NetlistSim<'a> {
    nl: &'a Netlist,
    order: Vec<GateId>,
    value: Vec<bool>,
    inputs: Vec<bool>,
}

impl<'a> NetlistSim<'a> {
    /// Prepares a simulator; fails if the live logic has a combinational
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns the gates stuck on a combinational cycle.
    pub fn new(nl: &'a Netlist) -> Result<Self, Vec<GateId>> {
        let order = nl.topo_logic()?;
        Ok(NetlistSim {
            nl,
            order,
            value: vec![false; nl.num_gates()],
            inputs: vec![false; nl.num_gates()],
        })
    }

    /// Sets the value a primary-input gate will read until changed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an [`GateKind::Input`] gate.
    pub fn set_input(&mut self, id: GateId, v: bool) {
        assert_eq!(
            self.nl.gate(id).kind(),
            GateKind::Input,
            "set_input target must be an Input gate"
        );
        self.inputs[id.index()] = v;
    }

    /// Evaluates combinational logic for the current cycle without
    /// advancing register state.
    pub fn settle(&mut self) {
        for (id, g) in self.nl.gates() {
            match g.kind() {
                GateKind::Const(v) => self.value[id.index()] = v,
                GateKind::Input => self.value[id.index()] = self.inputs[id.index()],
                GateKind::Reg | GateKind::RegEn => {} // hold state (already in value)
                _ => {}
            }
        }
        for &id in &self.order {
            let g = self.nl.gate(id);
            let f = |i: usize| self.value[g.fanin()[i].index()];
            self.value[id.index()] = match g.kind() {
                GateKind::Alias => f(0),
                GateKind::Not => !f(0),
                GateKind::And => f(0) & f(1),
                GateKind::Or => f(0) | f(1),
                GateKind::Xor => f(0) ^ f(1),
                GateKind::Mux => {
                    if f(0) {
                        f(1)
                    } else {
                        f(2)
                    }
                }
                _ => unreachable!("topo order only yields logic gates"),
            };
        }
    }

    /// Evaluates, clocks every live register, then re-evaluates so all
    /// values form one consistent post-edge snapshot (a purely
    /// combinational observable and the register it mirrors must never
    /// disagree).
    pub fn step(&mut self) {
        self.settle();
        let live = self.nl.live_mask();
        let mut next: Vec<(GateId, bool)> = Vec::new();
        for (id, g) in self.nl.gates() {
            if !live[id.index()] {
                continue;
            }
            match g.kind() {
                GateKind::Reg => next.push((id, self.value[g.fanin()[0].index()])),
                GateKind::RegEn if self.value[g.fanin()[0].index()] => {
                    next.push((id, self.value[g.fanin()[1].index()]));
                }
                _ => {}
            }
        }
        for (id, v) in next {
            self.value[id.index()] = v;
        }
        self.settle();
    }

    /// Reads the value of any gate as of the last [`NetlistSim::settle`] or
    /// [`NetlistSim::step`].
    pub fn peek(&self, id: GateId) -> bool {
        self.value[id.index()]
    }

    /// Reads all keeps as `(name, value)` pairs.
    pub fn observe(&self) -> Vec<(&str, bool)> {
        self.nl
            .keeps()
            .iter()
            .map(|(g, n)| (n.as_str(), self.value[g.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Origin;

    const O: Origin = Origin::External;

    #[test]
    fn evaluates_full_adder() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let b = nl.input(O);
        let cin = nl.input(O);
        let axb = nl.xor(a, b, O);
        let sum = nl.xor(axb, cin, O);
        let g1 = nl.and(a, b, O);
        let g2 = nl.and(axb, cin, O);
        let cout = nl.or(g1, g2, O);
        nl.add_keep(sum, "sum");
        nl.add_keep(cout, "cout");
        let mut sim = NetlistSim::new(&nl).unwrap();
        for bits in 0..8u8 {
            let (va, vb, vc) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.set_input(cin, vc);
            sim.settle();
            let total = va as u8 + vb as u8 + vc as u8;
            assert_eq!(sim.peek(sum), total & 1 != 0, "sum for {bits:03b}");
            assert_eq!(sim.peek(cout), total >= 2, "cout for {bits:03b}");
        }
    }

    #[test]
    fn registers_delay_by_one_cycle() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let r = nl.reg(a, O);
        nl.add_keep(r, "q");
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input(a, true);
        sim.settle();
        assert!(!sim.peek(r)); // reset value
        sim.step();
        assert!(sim.peek(r));
        sim.set_input(a, false);
        sim.step();
        assert!(!sim.peek(r));
    }

    #[test]
    fn toggler_oscillates() {
        let mut nl = Netlist::new();
        let zero = nl.constant(false);
        let r = nl.reg(zero, O);
        let n = nl.not(r, O);
        nl.gate_mut(r).fanin = vec![n];
        nl.add_keep(r, "q");
        let mut sim = NetlistSim::new(&nl).unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            sim.step();
            seq.push(sim.peek(r));
        }
        assert_eq!(seq, vec![true, false, true, false]);
    }

    #[test]
    fn optimization_preserves_semantics() {
        // Build a redundant circuit, optimize, and compare cycle-by-cycle.
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let b = nl.input(O);
        let one = nl.constant(true);
        let t1 = nl.and(a, one, O); // = a
        let t2 = nl.not(b, O);
        let t3 = nl.not(t2, O); // = b
        let g = nl.xor(t1, t3, O);
        let r = nl.reg(g, O);
        nl.add_keep(r, "out");
        let golden = nl.clone();

        let mut opt = nl;
        opt.optimize();

        let mut sim_g = NetlistSim::new(&golden).unwrap();
        let mut sim_o = NetlistSim::new(&opt).unwrap();
        let stimulus = [(false, false), (true, false), (true, true), (false, true)];
        for (va, vb) in stimulus {
            sim_g.set_input(a, va);
            sim_g.set_input(b, vb);
            sim_o.set_input(a, va);
            sim_o.set_input(b, vb);
            sim_g.step();
            sim_o.step();
            assert_eq!(sim_g.observe(), sim_o.observe());
        }
    }
}
