//! Elaboration of a dataflow graph into a gate-level netlist.
//!
//! Every dataflow unit is expanded into its handshake control logic and
//! datapath, tagged with the unit's id as provenance. Channels become nets;
//! buffers annotated on channels become TEHB/OEHB register stages owned by
//! the channel. The result is what ODIN-II + Yosys would hand to ABC in the
//! paper's flow.
//!
//! ## Handshake conventions
//!
//! Channel signals seen by the producer carry the `_src` suffix, signals
//! seen by the consumer `_dst`. Data and `valid` travel forward
//! (src → dst), `ready` travels backward (dst → src). An opaque buffer
//! (OEHB) registers data/valid; a transparent buffer (TEHB) registers
//! `ready`. A [`BufferSpec::FULL`] pair therefore cuts every combinational
//! path through the channel.
//!
//! ## Macro resources
//!
//! Multipliers (DSP blocks) and memories (BRAM) do not consume LUT fabric:
//! their data outputs appear as [`GateKind::Input`] startpoints and their
//! data inputs become *keeps* (timing endpoints), mirroring how a
//! technology mapper treats hard-block boundaries.
//!
//! [`BufferSpec::FULL`]: dataflow::BufferSpec
//! [`GateKind::Input`]: crate::GateKind::Input

use crate::datapath as dp;
use crate::gate::{GateId, Origin};
use crate::netgraph::Netlist;
use dataflow::{ChannelId, Graph, OpKind, UnitId, UnitKind};

/// A malformed graph reaching elaboration: a unit port with no channel.
///
/// [`Graph::validate`] rejects these graphs up front; elaboration reports
/// the same defect as a structured error instead of panicking, so flows
/// fed an unvalidated graph (hand-built, or deserialized from outside)
/// fail with a diagnosis rather than a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElaborateError {
    /// Input port `port` of `unit` has no incoming channel.
    DanglingInput {
        /// The unit with the unconnected port.
        unit: UnitId,
        /// The dangling input port index.
        port: usize,
    },
    /// Output port `port` of `unit` has no outgoing channel.
    DanglingOutput {
        /// The unit with the unconnected port.
        unit: UnitId,
        /// The dangling output port index.
        port: usize,
    },
}

impl std::fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElaborateError::DanglingInput { unit, port } => {
                write!(f, "input port {port} of unit {unit} has no channel")
            }
            ElaborateError::DanglingOutput { unit, port } => {
                write!(f, "output port {port} of unit {unit} has no channel")
            }
        }
    }
}

impl std::error::Error for ElaborateError {}

/// The nets of one channel after elaboration.
///
/// All handles are alias gates; after [`Netlist::optimize`] call
/// [`Netlist::resolve`] to reach the canonical driver.
#[derive(Debug, Clone)]
pub struct ChannelNets {
    /// Data bits driven by the producer (pre-buffer).
    pub data_src: Vec<GateId>,
    /// `valid` driven by the producer (pre-buffer).
    pub valid_src: GateId,
    /// `ready` driven by the consumer (post-buffer).
    pub ready_dst: GateId,
    /// Data bits observed by the consumer (post-buffer).
    pub data_dst: Vec<GateId>,
    /// `valid` observed by the consumer (post-buffer).
    pub valid_dst: GateId,
    /// `ready` observed by the producer (pre-buffer).
    pub ready_src: GateId,
}

/// Result of [`elaborate`]: the netlist plus per-channel net handles.
#[derive(Debug)]
pub struct Elaboration {
    /// The elaborated netlist.
    pub netlist: Netlist,
    /// Channel nets, indexed by [`ChannelId`] order.
    pub channels: Vec<ChannelNets>,
}

impl Elaboration {
    /// Net handles for a channel.
    pub fn channel_nets(&self, ch: ChannelId) -> &ChannelNets {
        &self.channels[ch.index()]
    }
}

/// Elaborates `g` (with its current buffer annotations) into gates.
///
/// The graph should be [validated](Graph::validate) first.
///
/// # Errors
///
/// [`ElaborateError`] if a unit port has no channel — the defect
/// [`Graph::validate`] would have reported up front.
pub fn elaborate(g: &Graph) -> Result<Elaboration, ElaborateError> {
    let mut e = Elaborator::new(g);
    e.build_channels();
    for (uid, _) in g.units() {
        e.elaborate_unit(uid)?;
    }
    Ok(Elaboration {
        netlist: e.nl,
        channels: e.channels,
    })
}

pub(crate) struct Elaborator<'g> {
    g: &'g Graph,
    pub(crate) nl: Netlist,
    pub(crate) channels: Vec<ChannelNets>,
}

impl<'g> Elaborator<'g> {
    pub(crate) fn new(g: &'g Graph) -> Self {
        Elaborator {
            g,
            nl: Netlist::new(),
            channels: Vec::new(),
        }
    }

    /// Creates aliases and buffer stages for every channel.
    pub(crate) fn build_channels(&mut self) {
        for (cid, ch) in self.g.channels() {
            let w = ch.width() as usize;
            let src_o = Origin::Unit(ch.src().unit);
            let dst_o = Origin::Unit(ch.dst().unit);
            let buf_o = Origin::Channel(cid);
            let data_src: Vec<GateId> = (0..w).map(|_| self.nl.forward_alias(src_o)).collect();
            let valid_src = self.nl.forward_alias(src_o);
            let ready_dst = self.nl.forward_alias(dst_o);

            // Forward pass: src -> [TEHB] -> [OEHB] -> dst for data/valid;
            // ready is threaded in the opposite direction.
            let spec = ch.buffer();
            // OEHB (closest to dst). Its downstream ready is ready_dst.
            // Compute the stage outputs lazily depending on the spec.
            let (data_dst, valid_dst, ready_after_oehb) = if spec.opaque {
                // Placeholders for the TEHB stage outputs (bound below).
                let d1: Vec<GateId> = (0..w).map(|_| self.nl.forward_alias(buf_o)).collect();
                let v1 = self.nl.forward_alias(buf_o);
                let vld = {
                    let zero = self.nl.constant(false);
                    self.nl.reg(zero, buf_o)
                };
                let not_vld = self.nl.not(vld, buf_o);
                let ready1 = self.nl.or(not_vld, ready_dst, buf_o);
                let en = self.nl.and(ready1, v1, buf_o);
                let mut dreg = Vec::with_capacity(w);
                for &d in &d1 {
                    // Clock-enabled data register: the enable rides the CE
                    // pin, so the buffer datapath costs no LUTs.
                    let r = self.nl.reg_en(en, d, buf_o);
                    dreg.push(r);
                }
                let not_rdst = self.nl.not(ready_dst, buf_o);
                let hold = self.nl.and(vld, not_rdst, buf_o);
                let vld_next = self.nl.or(en, hold, buf_o);
                self.nl.gate_mut(vld).fanin = vec![vld_next];
                // Stage inputs d1/v1 come from the TEHB below (or directly
                // from src if there is no TEHB).
                let tehb_in =
                    self.tehb_stage(&data_src, valid_src, ready1, spec.transparent, buf_o);
                for (alias, real) in d1.iter().zip(&tehb_in.0) {
                    self.nl.bind_alias(*alias, *real);
                }
                self.nl.bind_alias(v1, tehb_in.1);
                (dreg, vld, tehb_in.2)
            } else {
                let tehb_in =
                    self.tehb_stage(&data_src, valid_src, ready_dst, spec.transparent, buf_o);
                (tehb_in.0, tehb_in.1, tehb_in.2)
            };

            self.channels.push(ChannelNets {
                data_src,
                valid_src,
                ready_dst,
                data_dst,
                valid_dst,
                ready_src: ready_after_oehb,
            });
        }
    }

    /// Optionally inserts a TEHB between `d0/v0` and a stage whose ready is
    /// `ready_down`; returns `(data, valid, ready_up)` as seen downstream /
    /// upstream.
    fn tehb_stage(
        &mut self,
        d0: &[GateId],
        v0: GateId,
        ready_down: GateId,
        present: bool,
        o: Origin,
    ) -> (Vec<GateId>, GateId, GateId) {
        if !present {
            return (d0.to_vec(), v0, ready_down);
        }
        let full = {
            let zero = self.nl.constant(false);
            self.nl.reg(zero, o)
        };
        let ready_up = self.nl.not(full, o);
        let v1 = self.nl.or(v0, full, o);
        let mut d1 = Vec::with_capacity(d0.len());
        for &d in d0 {
            // Capture while empty (CE = !full): free on the FF's CE pin.
            let saved = self.nl.reg_en(ready_up, d, o);
            d1.push(self.nl.mux(full, saved, d, o));
        }
        let not_rdown = self.nl.not(ready_down, o);
        let full_next = self.nl.and(v1, not_rdown, o);
        self.nl.gate_mut(full).fanin = vec![full_next];
        (d1, v1, ready_up)
    }

    /// Consumer-side nets of input port `p` of `uid`.
    fn input_nets(
        &self,
        uid: UnitId,
        p: usize,
    ) -> Result<(Vec<GateId>, GateId, GateId), ElaborateError> {
        let ch = self
            .g
            .input_channel(uid, p)
            .ok_or(ElaborateError::DanglingInput { unit: uid, port: p })?;
        let nets = &self.channels[ch.index()];
        Ok((nets.data_dst.clone(), nets.valid_dst, nets.ready_dst))
    }

    /// Producer-side nets of output port `p` of `uid`.
    fn output_nets(
        &self,
        uid: UnitId,
        p: usize,
    ) -> Result<(Vec<GateId>, GateId, GateId), ElaborateError> {
        let ch = self
            .g
            .output_channel(uid, p)
            .ok_or(ElaborateError::DanglingOutput { unit: uid, port: p })?;
        let nets = &self.channels[ch.index()];
        Ok((nets.data_src.clone(), nets.valid_src, nets.ready_src))
    }

    fn bind_data(&mut self, aliases: &[GateId], values: &[GateId]) {
        assert_eq!(aliases.len(), values.len(), "data width mismatch");
        for (a, v) in aliases.iter().zip(values) {
            self.nl.bind_alias(*a, *v);
        }
    }

    fn zero_reg(&mut self, o: Origin) -> GateId {
        let zero = self.nl.constant(false);
        self.nl.reg(zero, o)
    }

    pub(crate) fn elaborate_unit(&mut self, uid: UnitId) -> Result<(), ElaborateError> {
        let unit = self.g.unit(uid).clone();
        let o = Origin::Unit(uid);
        match *unit.kind() {
            UnitKind::Entry | UnitKind::Argument { .. } => {
                let (data_out, valid_out, ready) = self.output_nets(uid, 0)?;
                let fired = self.zero_reg(o);
                let not_fired = self.nl.not(fired, o);
                self.nl.bind_alias(valid_out, not_fired);
                let transfer = self.nl.and(not_fired, ready, o);
                let fired_next = self.nl.or(fired, transfer, o);
                self.nl.gate_mut(fired).fanin = vec![fired_next];
                if !data_out.is_empty() {
                    let bits: Vec<GateId> = (0..data_out.len()).map(|_| self.nl.input(o)).collect();
                    self.bind_data(&data_out, &bits);
                }
            }
            UnitKind::Exit => {
                let (data_in, valid_in, ready) = self.input_nets(uid, 0)?;
                let one = self.nl.constant(true);
                self.nl.bind_alias(ready, one);
                self.nl
                    .add_keep(valid_in, format!("{}:exit_valid", unit.name()));
                for (i, &d) in data_in.iter().enumerate() {
                    self.nl
                        .add_keep(d, format!("{}:exit_data{}", unit.name(), i));
                }
            }
            UnitKind::Sink => {
                let (_, _, ready) = self.input_nets(uid, 0)?;
                let one = self.nl.constant(true);
                self.nl.bind_alias(ready, one);
            }
            UnitKind::Source => {
                let (_, valid_out, _) = self.output_nets(uid, 0)?;
                let one = self.nl.constant(true);
                self.nl.bind_alias(valid_out, one);
            }
            UnitKind::Constant { value } => {
                let (_, valid_in, ready_in) = self.input_nets(uid, 0)?;
                let (data_out, valid_out, ready_out) = self.output_nets(uid, 0)?;
                self.nl.bind_alias(valid_out, valid_in);
                self.nl.bind_alias(ready_in, ready_out);
                let bits = dp::const_word(&mut self.nl, value, data_out.len());
                self.bind_data(&data_out, &bits);
            }
            UnitKind::Fork { outputs } => self.eager_fork(uid, outputs as usize, o)?,
            UnitKind::LazyFork { outputs } => self.lazy_fork(uid, outputs as usize, o)?,
            UnitKind::Join { inputs } => {
                let ins: Vec<_> = (0..inputs as usize)
                    .map(|p| self.input_nets(uid, p))
                    .collect::<Result<_, _>>()?;
                let (_, valid_out, ready_out) = self.output_nets(uid, 0)?;
                let valids: Vec<GateId> = ins.iter().map(|(_, v, _)| *v).collect();
                let all = self.nl.and_tree(&valids, o);
                self.nl.bind_alias(valid_out, all);
                for (i, (_, _, ready_in)) in ins.iter().enumerate() {
                    let others: Vec<GateId> = valids
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, v)| *v)
                        .collect();
                    let others_valid = self.nl.and_tree(&others, o);
                    let r = self.nl.and(ready_out, others_valid, o);
                    self.nl.bind_alias(*ready_in, r);
                }
            }
            UnitKind::Branch => self.branch(uid, o)?,
            UnitKind::Merge { inputs } => {
                self.merge_like(uid, inputs as usize, false, o)?;
            }
            UnitKind::ControlMerge { inputs } => {
                self.merge_like(uid, inputs as usize, true, o)?;
            }
            UnitKind::Mux { inputs } => self.mux_unit(uid, inputs as usize, o)?,
            UnitKind::Operator(op) => self.operator(uid, op, o)?,
            UnitKind::Load { .. } => self.load(uid, unit.name(), o)?,
            UnitKind::Store { .. } => self.store(uid, unit.name(), o)?,
        }
        Ok(())
    }

    fn eager_fork(&mut self, uid: UnitId, n: usize, o: Origin) -> Result<(), ElaborateError> {
        let (data_in, valid_in, ready_in) = self.input_nets(uid, 0)?;
        let outs: Vec<_> = (0..n)
            .map(|p| self.output_nets(uid, p))
            .collect::<Result<_, _>>()?;
        let mut dones = Vec::with_capacity(n);
        let mut sat = Vec::with_capacity(n);
        for (_, _, ready_i) in &outs {
            let done = self.zero_reg(o);
            sat.push(self.nl.or(done, *ready_i, o));
            dones.push(done);
        }
        let all = self.nl.and_tree(&sat, o);
        self.nl.bind_alias(ready_in, all);
        let fire_all = self.nl.and(valid_in, all, o);
        let not_fire_all = self.nl.not(fire_all, o);
        for (i, (data_i, valid_i, ready_i)) in outs.iter().enumerate() {
            let not_done = self.nl.not(dones[i], o);
            let v = self.nl.and(valid_in, not_done, o);
            self.nl.bind_alias(*valid_i, v);
            let transfer = self.nl.and(v, *ready_i, o);
            let acc = self.nl.or(dones[i], transfer, o);
            let next = self.nl.and(acc, not_fire_all, o);
            self.nl.gate_mut(dones[i]).fanin = vec![next];
            self.bind_data(data_i, &data_in);
        }
        Ok(())
    }

    fn lazy_fork(&mut self, uid: UnitId, n: usize, o: Origin) -> Result<(), ElaborateError> {
        let (data_in, valid_in, ready_in) = self.input_nets(uid, 0)?;
        let outs: Vec<_> = (0..n)
            .map(|p| self.output_nets(uid, p))
            .collect::<Result<_, _>>()?;
        let readys: Vec<GateId> = outs.iter().map(|(_, _, r)| *r).collect();
        let all = self.nl.and_tree(&readys, o);
        self.nl.bind_alias(ready_in, all);
        for (i, (data_i, valid_i, _)) in outs.iter().enumerate() {
            let others: Vec<GateId> = readys
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, r)| *r)
                .collect();
            let others_ready = self.nl.and_tree(&others, o);
            let v = self.nl.and(valid_in, others_ready, o);
            self.nl.bind_alias(*valid_i, v);
            self.bind_data(data_i, &data_in);
        }
        Ok(())
    }

    fn branch(&mut self, uid: UnitId, o: Origin) -> Result<(), ElaborateError> {
        let (data_in, valid_d, ready_d) = self.input_nets(uid, 0)?;
        let (cond_in, valid_c, ready_c) = self.input_nets(uid, 1)?;
        let cond = cond_in[0];
        let (data_t, valid_t, ready_t) = self.output_nets(uid, 0)?;
        let (data_f, valid_f, ready_f) = self.output_nets(uid, 1)?;
        let both = self.nl.and(valid_d, valid_c, o);
        let vt = self.nl.and(both, cond, o);
        let ncond = self.nl.not(cond, o);
        let vf = self.nl.and(both, ncond, o);
        self.nl.bind_alias(valid_t, vt);
        self.nl.bind_alias(valid_f, vf);
        let sel_ready = self.nl.mux(cond, ready_t, ready_f, o);
        let rd = self.nl.and(valid_c, sel_ready, o);
        let rc = self.nl.and(valid_d, sel_ready, o);
        self.nl.bind_alias(ready_d, rd);
        self.nl.bind_alias(ready_c, rc);
        self.bind_data(&data_t, &data_in);
        self.bind_data(&data_f, &data_in);
        Ok(())
    }

    /// Merge and control-merge share the priority-grant structure.
    fn merge_like(
        &mut self,
        uid: UnitId,
        n: usize,
        with_index: bool,
        o: Origin,
    ) -> Result<(), ElaborateError> {
        let ins: Vec<_> = (0..n)
            .map(|p| self.input_nets(uid, p))
            .collect::<Result<_, _>>()?;
        let (data_out, valid_out, ready_out0) = self.output_nets(uid, 0)?;
        let valids: Vec<GateId> = ins.iter().map(|(_, v, _)| *v).collect();
        // Priority grants (highest index wins: loop back edges outrank
        // entry tokens so buffered circuits keep iteration order).
        let mut grants_rev = Vec::with_capacity(n);
        let mut seen = valids[n - 1];
        grants_rev.push(valids[n - 1]);
        for &v in valids.iter().rev().skip(1) {
            let not_seen = self.nl.not(seen, o);
            grants_rev.push(self.nl.and(v, not_seen, o));
            seen = self.nl.or(seen, v, o);
        }
        grants_rev.reverse();
        let grants = grants_rev;
        let any_comb = seen;
        // Consumption requires both outputs fired (cmerge carries fork-style
        // done flags so its two outputs deliver atomically per token), and
        // the grant is latched for the token's lifetime so a later arrival
        // on another input cannot corrupt the in-flight pair.
        let (fire_ready, eff_grants, any) = if with_index {
            let (index_out, valid_out1, ready_out1) = self.output_nets(uid, 1)?;
            let locked = self.zero_reg(o);
            let not_locked = self.nl.not(locked, o);
            // One latched-select bit per grant (one-hot; n is always 2 in
            // practice, but keep the construction general).
            let mut sel_regs = Vec::with_capacity(n);
            let mut eff_grants = Vec::with_capacity(n);
            for &gc in grants.iter() {
                let sel = self.zero_reg(o);
                let fresh = self.nl.and(not_locked, gc, o);
                let held = self.nl.and(locked, sel, o);
                eff_grants.push(self.nl.or(fresh, held, o));
                sel_regs.push(sel);
            }
            let any = self.nl.or(locked, any_comb, o);
            // Index encoder over the effective grants.
            let idx_w = index_out.len();
            for (b, idx_alias) in index_out.iter().enumerate().take(idx_w) {
                let contributors: Vec<GateId> = eff_grants
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i >> b) & 1 == 1)
                    .map(|(_, g)| *g)
                    .collect();
                let bit = self.nl.or_tree(&contributors, o);
                self.nl.bind_alias(*idx_alias, bit);
            }
            let done0 = self.zero_reg(o);
            let done1 = self.zero_reg(o);
            let nd0 = self.nl.not(done0, o);
            let nd1 = self.nl.not(done1, o);
            let v0 = self.nl.and(any, nd0, o);
            let v1 = self.nl.and(any, nd1, o);
            self.nl.bind_alias(valid_out, v0);
            self.nl.bind_alias(valid_out1, v1);
            let t0 = self.nl.or(done0, ready_out0, o);
            let t1 = self.nl.or(done1, ready_out1, o);
            let all = self.nl.and(t0, t1, o);
            let fire_all = self.nl.and(any, all, o);
            let not_fire = self.nl.not(fire_all, o);
            for (done, (v, r)) in [(done0, (v0, ready_out0)), (done1, (v1, ready_out1))] {
                let transfer = self.nl.and(v, r, o);
                let acc = self.nl.or(done, transfer, o);
                let next = self.nl.and(acc, not_fire, o);
                self.nl.gate_mut(done).fanin = vec![next];
            }
            // Lock while a token is in flight; release at completion.
            let lock_next = self.nl.and(any, not_fire, o);
            self.nl.gate_mut(locked).fanin = vec![lock_next];
            for (sel, &eg) in sel_regs.iter().zip(&eff_grants) {
                let hold = self.nl.and(eg, not_fire, o);
                self.nl.gate_mut(*sel).fanin = vec![hold];
            }
            (all, eff_grants, any)
        } else {
            self.nl.bind_alias(valid_out, any_comb);
            (ready_out0, grants.clone(), any_comb)
        };
        let _ = any;
        for (i, (_, _, ready_in)) in ins.iter().enumerate() {
            let r = self.nl.and(eff_grants[i], fire_ready, o);
            self.nl.bind_alias(*ready_in, r);
        }
        // Priority data mux matching the grant order (highest index wins).
        if !data_out.is_empty() {
            let w = data_out.len();
            let mut acc = ins[0].0.clone();
            for i in 1..n {
                acc = dp::word_mux(&mut self.nl, valids[i], &ins[i].0, &acc, o);
            }
            assert_eq!(acc.len(), w);
            self.bind_data(&data_out, &acc);
        }
        Ok(())
    }

    fn mux_unit(&mut self, uid: UnitId, n: usize, o: Origin) -> Result<(), ElaborateError> {
        let (sel_in, valid_sel, ready_sel) = self.input_nets(uid, 0)?;
        let ins: Vec<_> = (1..=n)
            .map(|p| self.input_nets(uid, p))
            .collect::<Result<_, _>>()?;
        let (data_out, valid_out, ready_out) = self.output_nets(uid, 0)?;
        let mut hits = Vec::with_capacity(n);
        let mut seleqs = Vec::with_capacity(n);
        for (i, (_, v, _)) in ins.iter().enumerate() {
            let eq_i = dp::sel_equals_const(&mut self.nl, &sel_in, i, o);
            hits.push(self.nl.and(eq_i, *v, o));
            seleqs.push(eq_i);
        }
        let any_hit = self.nl.or_tree(&hits, o);
        let vout = self.nl.and(valid_sel, any_hit, o);
        self.nl.bind_alias(valid_out, vout);
        let rs = self.nl.and(vout, ready_out, o);
        self.nl.bind_alias(ready_sel, rs);
        for (i, (_, _, ready_in)) in ins.iter().enumerate() {
            let gate = self.nl.and(seleqs[i], valid_sel, o);
            let r = self.nl.and(gate, ready_out, o);
            self.nl.bind_alias(*ready_in, r);
        }
        if !data_out.is_empty() {
            let mut acc = dp::const_word(&mut self.nl, 0, data_out.len());
            for (i, (data_i, _, _)) in ins.iter().enumerate() {
                acc = dp::word_mux(&mut self.nl, seleqs[i], data_i, &acc, o);
            }
            self.bind_data(&data_out, &acc);
        }
        Ok(())
    }

    /// Join-style control for an operator's inputs: returns
    /// (`valid_all`, per-input other-valids) and binds nothing.
    fn join_control(&mut self, valids: &[GateId], o: Origin) -> (GateId, Vec<GateId>) {
        let all = self.nl.and_tree(valids, o);
        let others: Vec<GateId> = (0..valids.len())
            .map(|i| {
                let rest: Vec<GateId> = valids
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, v)| *v)
                    .collect();
                self.nl.and_tree(&rest, o)
            })
            .collect();
        (all, others)
    }

    fn operator(&mut self, uid: UnitId, op: OpKind, o: Origin) -> Result<(), ElaborateError> {
        let arity = op.arity();
        let ins: Vec<_> = (0..arity)
            .map(|p| self.input_nets(uid, p))
            .collect::<Result<_, _>>()?;
        let (data_out, valid_out, ready_out) = self.output_nets(uid, 0)?;
        let valids: Vec<GateId> = ins.iter().map(|(_, v, _)| *v).collect();
        let (valid_all, others) = self.join_control(&valids, o);

        if op.latency() == 0 {
            self.nl.bind_alias(valid_out, valid_all);
            for (i, (_, _, ready_in)) in ins.iter().enumerate() {
                let r = self.nl.and(ready_out, others[i], o);
                self.nl.bind_alias(*ready_in, r);
            }
            let result = self.comb_datapath(op, &ins, data_out.len(), o);
            self.bind_data(&data_out, &result);
        } else {
            // Pipelined operator backed by a hard macro (DSP): L valid
            // stages with a single enable; data inputs terminate at the
            // macro boundary, data outputs originate from it.
            let stages = op.latency() as usize;
            let mut vregs = Vec::with_capacity(stages);
            for _ in 0..stages {
                vregs.push(self.zero_reg(o));
            }
            let last = vregs[stages - 1];
            let not_last = self.nl.not(last, o);
            let en = self.nl.or(ready_out, not_last, o);
            let mut prev = self.nl.and(valid_all, en, o);
            for (k, &vr) in vregs.iter().enumerate() {
                let held = self.nl.not(en, o);
                let keep = self.nl.and(vr, held, o);
                let next = if k == 0 {
                    self.nl.or(prev, keep, o)
                } else {
                    let shifted = self.nl.and(prev, en, o);
                    self.nl.or(shifted, keep, o)
                };
                self.nl.gate_mut(vr).fanin = vec![next];
                prev = vr;
            }
            self.nl.bind_alias(valid_out, last);
            for (i, (_, _, ready_in)) in ins.iter().enumerate() {
                let r = self.nl.and(en, others[i], o);
                self.nl.bind_alias(*ready_in, r);
            }
            // Macro boundary: inputs are endpoints, outputs startpoints.
            let uname = self.g.unit(uid).name().to_string();
            for (pi, (data_i, _, _)) in ins.iter().enumerate() {
                for (bi, &d) in data_i.iter().enumerate() {
                    self.nl.add_keep(d, format!("{uname}:dsp_in{pi}_{bi}"));
                }
            }
            let bits: Vec<GateId> = (0..data_out.len()).map(|_| self.nl.input(o)).collect();
            self.bind_data(&data_out, &bits);
        }
        Ok(())
    }

    fn comb_datapath(
        &mut self,
        op: OpKind,
        ins: &[(Vec<GateId>, GateId, GateId)],
        out_width: usize,
        o: Origin,
    ) -> Vec<GateId> {
        let a = &ins[0].0;
        let nl = &mut self.nl;
        let result: Vec<GateId> = match op {
            OpKind::Add => dp::add(nl, a, &ins[1].0, o),
            OpKind::Sub => dp::sub(nl, a, &ins[1].0, o),
            OpKind::And => dp::word_and(nl, a, &ins[1].0, o),
            OpKind::Or => dp::word_or(nl, a, &ins[1].0, o),
            OpKind::Xor => dp::word_xor(nl, a, &ins[1].0, o),
            OpKind::Not => dp::word_not(nl, a, o),
            OpKind::ShlConst(k) => dp::shl_const(nl, a, k as usize, o),
            OpKind::ShrConst(k) => dp::shr_const(nl, a, k as usize, o),
            OpKind::Eq => vec![dp::eq(nl, a, &ins[1].0, o)],
            OpKind::Ne => {
                let e = dp::eq(nl, a, &ins[1].0, o);
                vec![nl.not(e, o)]
            }
            OpKind::Lt => vec![dp::lt_signed(nl, a, &ins[1].0, o)],
            OpKind::Ge => {
                let lt = dp::lt_signed(nl, a, &ins[1].0, o);
                vec![nl.not(lt, o)]
            }
            OpKind::Gt => vec![dp::lt_signed(nl, &ins[1].0.clone(), a, o)],
            OpKind::Le => {
                let gt = dp::lt_signed(nl, &ins[1].0.clone(), a, o);
                vec![nl.not(gt, o)]
            }
            OpKind::Select => {
                let cond = ins[0].0[0];
                dp::word_mux(nl, cond, &ins[1].0, &ins[2].0, o)
            }
            OpKind::Mul => unreachable!("multipliers are pipelined"),
        };
        assert_eq!(result.len(), out_width, "datapath width mismatch for {op}");
        result
    }

    fn load(&mut self, uid: UnitId, name: &str, o: Origin) -> Result<(), ElaborateError> {
        let (addr_in, valid_in, ready_in) = self.input_nets(uid, 0)?;
        let (data_out, valid_out, ready_out) = self.output_nets(uid, 0)?;
        let v = self.zero_reg(o);
        let not_v = self.nl.not(v, o);
        let en = self.nl.or(ready_out, not_v, o);
        let take = self.nl.and(valid_in, en, o);
        let not_en = self.nl.not(en, o);
        let hold = self.nl.and(v, not_en, o);
        let v_next = self.nl.or(take, hold, o);
        self.nl.gate_mut(v).fanin = vec![v_next];
        self.nl.bind_alias(valid_out, v);
        self.nl.bind_alias(ready_in, en);
        for (bi, &a) in addr_in.iter().enumerate() {
            self.nl.add_keep(a, format!("{name}:bram_addr{bi}"));
        }
        let bits: Vec<GateId> = (0..data_out.len()).map(|_| self.nl.input(o)).collect();
        self.bind_data(&data_out, &bits);
        Ok(())
    }

    fn store(&mut self, uid: UnitId, name: &str, o: Origin) -> Result<(), ElaborateError> {
        let (addr_in, valid_a, ready_a) = self.input_nets(uid, 0)?;
        let (data_in, valid_d, ready_d) = self.input_nets(uid, 1)?;
        let (_, valid_out, ready_out) = self.output_nets(uid, 0)?;
        let both = self.nl.and(valid_a, valid_d, o);
        let v = self.zero_reg(o);
        let not_v = self.nl.not(v, o);
        let en = self.nl.or(ready_out, not_v, o);
        let take = self.nl.and(both, en, o);
        let not_en = self.nl.not(en, o);
        let hold = self.nl.and(v, not_en, o);
        let v_next = self.nl.or(take, hold, o);
        self.nl.gate_mut(v).fanin = vec![v_next];
        self.nl.bind_alias(valid_out, v);
        let ra = self.nl.and(en, valid_d, o);
        let rd = self.nl.and(en, valid_a, o);
        self.nl.bind_alias(ready_a, ra);
        self.nl.bind_alias(ready_d, rd);
        self.nl.add_keep(take, format!("{name}:bram_we"));
        for (bi, &a) in addr_in.iter().enumerate() {
            self.nl.add_keep(a, format!("{name}:bram_addr{bi}"));
        }
        for (bi, &d) in data_in.iter().enumerate() {
            self.nl.add_keep(d, format!("{name}:bram_din{bi}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{BufferSpec, Graph, PortRef, UnitKind};

    /// entry -> fork -> (shl, pass) -> add -> exit  (Figure 2 skeleton).
    fn figure2_graph() -> Graph {
        let mut g = Graph::new("fig2");
        let bb = g.add_basic_block("bb0");
        let a = g
            .add_unit(UnitKind::Argument { index: 0 }, "a", bb, 8)
            .unwrap();
        let f = g.add_unit(UnitKind::fork(2), "fork", bb, 8).unwrap();
        let s = g
            .add_unit(UnitKind::Operator(OpKind::ShlConst(1)), "shl", bb, 8)
            .unwrap();
        let add = g
            .add_unit(UnitKind::Operator(OpKind::Add), "add", bb, 8)
            .unwrap();
        let x = g.add_unit(UnitKind::Exit, "exit", bb, 8).unwrap();
        g.connect(PortRef::new(a, 0), PortRef::new(f, 0)).unwrap();
        g.connect(PortRef::new(f, 0), PortRef::new(s, 0)).unwrap();
        g.connect(PortRef::new(s, 0), PortRef::new(add, 0)).unwrap();
        g.connect(PortRef::new(f, 1), PortRef::new(add, 1)).unwrap();
        g.connect(PortRef::new(add, 0), PortRef::new(x, 0)).unwrap();
        g.validate().unwrap();
        g
    }

    #[test]
    fn elaborates_without_combinational_cycles() {
        let g = figure2_graph();
        let mut e = elaborate(&g).unwrap();
        e.netlist.optimize();
        assert!(e.netlist.topo_logic().is_ok());
        assert!(e.netlist.num_live_logic() > 0);
    }

    #[test]
    fn buffers_add_registers() {
        let mut g = figure2_graph();
        let base = {
            let e = elaborate(&g).unwrap();
            let mut nl = e.netlist;
            nl.optimize();
            nl.num_live_regs()
        };
        let ch = g.output_channel(g.unit_by_name("shl").unwrap(), 0).unwrap();
        g.set_buffer(ch, BufferSpec::FULL);
        let e = elaborate(&g).unwrap();
        let mut nl = e.netlist;
        nl.optimize();
        // Full buffer on an 8-bit channel: OEHB (8 data + 1 vld) +
        // TEHB (8 saved + 1 full) = 18 extra registers.
        assert_eq!(nl.num_live_regs(), base + 18);
    }

    #[test]
    fn argument_data_becomes_primary_inputs() {
        let g = figure2_graph();
        let e = elaborate(&g).unwrap();
        let n_inputs = e
            .netlist
            .gates()
            .filter(|(_, gt)| gt.kind() == crate::GateKind::Input)
            .count();
        assert_eq!(n_inputs, 8); // the 8-bit argument
    }

    #[test]
    fn exit_keeps_make_datapath_live() {
        let g = figure2_graph();
        let mut e = elaborate(&g).unwrap();
        e.netlist.optimize();
        // The adder datapath must survive optimization (it feeds the exit).
        let live_logic = e.netlist.num_live_logic();
        assert!(live_logic >= 8, "adder logic missing: {live_logic}");
    }

    #[test]
    fn cross_unit_sharing_occurs() {
        // Two forks feeding one join: the join's AND of valids duplicates
        // logic that strash can merge with fork-side AND structures only if
        // shapes align; at minimum, optimization must shrink the netlist.
        let g = figure2_graph();
        let e = elaborate(&g).unwrap();
        let mut nl = e.netlist;
        let before = nl.num_live_gates();
        let stats = nl.optimize();
        assert!(stats.live_after <= before);
        assert!(stats.rewrites > 0);
    }

    #[test]
    fn unconnected_use_reports_structured_error() {
        // Elaborating an unvalidated graph with dangling ports returns a
        // structured error naming the offending unit and port instead of
        // panicking.
        let mut g = Graph::new("bad");
        let bb = g.add_basic_block("bb0");
        let f = g.add_unit(UnitKind::fork(2), "f", bb, 4).unwrap();
        match elaborate(&g) {
            Err(ElaborateError::DanglingInput { unit, port }) => {
                assert_eq!(unit, f);
                assert_eq!(port, 0);
            }
            other => panic!("expected DanglingInput, got {other:?}"),
        }
    }
}
