//! Gate primitives and provenance.

use dataflow::{ChannelId, UnitId};
use std::fmt;

/// Identifier of a gate within a [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Creates a gate id from a raw index.
    pub fn from_raw(index: u32) -> Self {
        GateId(index)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Primitive gate kinds.
///
/// The elaborator only emits these; richer operators (adders, muxe trees,
/// comparators) are decomposed into them so the optimizer and the LUT
/// mapper see a homogeneous network, like a BLIF read into ABC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Constant 0/1.
    Const(bool),
    /// Primary input: a value produced outside the LUT fabric (kernel
    /// argument bit, DSP-block product bit, BRAM read-data bit). A timing
    /// startpoint, like a register output.
    Input,
    /// Single-fanin pass-through used during elaboration to stitch units
    /// together; eliminated by [`Netlist::optimize`](crate::Netlist::optimize).
    Alias,
    /// Inverter (1 fanin).
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
    /// 2:1 multiplexer: fanins are `[sel, a, b]`, output `sel ? a : b`.
    Mux,
    /// D flip-flop: fanin `[d]`; output is the registered value. A timing
    /// startpoint *and* endpoint.
    Reg,
    /// D flip-flop with clock enable: fanins `[en, d]`; holds its value
    /// while `en` is low. The enable uses the FF's CE pin — no LUT cost,
    /// exactly like FPGA fabric (this is why buffers cost no datapath
    /// logic).
    RegEn,
}

impl GateKind {
    /// Number of fanins this kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const(_) | GateKind::Input => 0,
            GateKind::Alias | GateKind::Not | GateKind::Reg => 1,
            GateKind::And | GateKind::Or | GateKind::Xor | GateKind::RegEn => 2,
            GateKind::Mux => 3,
        }
    }

    /// `true` for combinational logic gates that occupy LUT fabric
    /// (everything except constants, inputs, aliases and registers).
    pub fn is_logic(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Mux
        )
    }

    /// `true` if the gate output is a combinational-timing startpoint.
    pub fn is_startpoint(self) -> bool {
        matches!(
            self,
            GateKind::Const(_) | GateKind::Input | GateKind::Reg | GateKind::RegEn
        )
    }

    /// `true` for sequential elements (one flip-flop each).
    pub fn is_reg(self) -> bool {
        matches!(self, GateKind::Reg | GateKind::RegEn)
    }

    /// `true` for commutative 2-input gates (fanins may be canonically
    /// sorted for structural hashing).
    pub fn is_commutative(self) -> bool {
        matches!(self, GateKind::And | GateKind::Or | GateKind::Xor)
    }
}

/// Where a gate came from: the provenance the LUT mapper propagates so the
/// paper's LUT→DFG mapping can recover unit boundaries after synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Origin {
    /// Logic belonging to a dataflow unit.
    Unit(UnitId),
    /// Logic belonging to a buffer placed on a channel.
    Channel(ChannelId),
    /// Glue with no meaningful provenance (constants, stitched wires).
    External,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Unit(u) => write!(f, "{u}"),
            Origin::Channel(c) => write!(f, "{c}"),
            Origin::External => f.write_str("ext"),
        }
    }
}

/// One gate of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gate {
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<GateId>,
    pub(crate) origin: Origin,
}

impl Gate {
    /// The gate's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's fanin gate ids (length = `kind.arity()`).
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }

    /// The gate's provenance.
    pub fn origin(&self) -> Origin {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Const(true).arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::And.arity(), 2);
        assert_eq!(GateKind::Mux.arity(), 3);
        assert_eq!(GateKind::Reg.arity(), 1);
    }

    #[test]
    fn classification() {
        assert!(GateKind::And.is_logic());
        assert!(!GateKind::Reg.is_logic());
        assert!(GateKind::Reg.is_startpoint());
        assert!(GateKind::Input.is_startpoint());
        assert!(!GateKind::And.is_startpoint());
        assert!(GateKind::Xor.is_commutative());
        assert!(!GateKind::Mux.is_commutative());
    }

    #[test]
    fn origin_display() {
        assert_eq!(Origin::Unit(UnitId::from_raw(2)).to_string(), "u2");
        assert_eq!(Origin::External.to_string(), "ext");
    }
}
