//! Isolated elaboration of a single unit.
//!
//! The mapping-agnostic baseline of the paper characterizes every dataflow
//! unit *in isolation*: the unit is synthesized alone, its combinational
//! depth measured, and that pre-characterized delay is used for buffer
//! placement — ignoring all cross-unit optimization. This module produces
//! the isolated netlist; the LUT mapper then measures its depth.

use crate::elaborate::{ElaborateError, Elaborator};
use crate::gate::Origin;
use crate::netgraph::Netlist;
use dataflow::{Graph, UnitId};

/// Elaborates only `uid` from `g`, stubbing its environment:
/// all incoming data/valid and all successor `ready` signals become
/// primary inputs, and everything the unit drives becomes a keep.
///
/// The resulting netlist contains exactly the logic a standalone synthesis
/// run of the unit would see.
///
/// # Example
///
/// ```
/// use dataflow::{Graph, UnitKind, OpKind, PortRef};
/// use netlist::elaborate_isolated;
///
/// # fn main() -> Result<(), dataflow::GraphError> {
/// let mut g = Graph::new("t");
/// let bb = g.add_basic_block("bb0");
/// let a = g.add_unit(UnitKind::Argument { index: 0 }, "a", bb, 8)?;
/// let b = g.add_unit(UnitKind::Argument { index: 1 }, "b", bb, 8)?;
/// let add = g.add_unit(UnitKind::Operator(OpKind::Add), "add", bb, 8)?;
/// let x = g.add_unit(UnitKind::Exit, "x", bb, 8)?;
/// g.connect(PortRef::new(a, 0), PortRef::new(add, 0))?;
/// g.connect(PortRef::new(b, 0), PortRef::new(add, 1))?;
/// g.connect(PortRef::new(add, 0), PortRef::new(x, 0))?;
/// let mut nl = elaborate_isolated(&g, add).unwrap();
/// nl.optimize();
/// assert!(nl.max_gate_depth().unwrap() > 0); // the adder's carry logic
/// # Ok(())
/// # }
/// ```
pub fn elaborate_isolated(g: &Graph, uid: UnitId) -> Result<Netlist, ElaborateError> {
    let mut e = Elaborator::new(g);
    e.build_channels();
    e.elaborate_unit(uid)?;
    let unit = g.unit(uid);
    let ext = Origin::External;
    // Stub producers: incoming data/valid are primary inputs.
    for (p, ch) in g.input_channels(uid).enumerate() {
        let nets = e.channels[ch.index()].clone();
        for d in nets.data_src {
            let pi = e.nl.input(ext);
            e.nl.bind_alias(d, pi);
        }
        let pi = e.nl.input(ext);
        e.nl.bind_alias(nets.valid_src, pi);
        // The unit's ready answer is an observable output.
        e.nl.add_keep(nets.ready_dst, format!("{}:ready_in{}", unit.name(), p));
    }
    // Stub consumers: successor ready is a primary input; the unit's
    // data/valid outputs are observables.
    for (p, ch) in g.output_channels(uid).enumerate() {
        let nets = e.channels[ch.index()].clone();
        let pi = e.nl.input(ext);
        e.nl.bind_alias(nets.ready_dst, pi);
        e.nl.add_keep(nets.valid_dst, format!("{}:valid_out{}", unit.name(), p));
        for (bi, d) in nets.data_dst.iter().enumerate() {
            e.nl.add_keep(*d, format!("{}:data_out{}_{}", unit.name(), p, bi));
        }
    }
    Ok(e.nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{OpKind, PortRef, UnitKind};

    fn graph_with_add() -> (Graph, UnitId) {
        let mut g = Graph::new("t");
        let bb = g.add_basic_block("bb0");
        let a = g
            .add_unit(UnitKind::Argument { index: 0 }, "a", bb, 8)
            .unwrap();
        let b = g
            .add_unit(UnitKind::Argument { index: 1 }, "b", bb, 8)
            .unwrap();
        let add = g
            .add_unit(UnitKind::Operator(OpKind::Add), "add", bb, 8)
            .unwrap();
        let x = g.add_unit(UnitKind::Exit, "x", bb, 8).unwrap();
        g.connect(PortRef::new(a, 0), PortRef::new(add, 0)).unwrap();
        g.connect(PortRef::new(b, 0), PortRef::new(add, 1)).unwrap();
        g.connect(PortRef::new(add, 0), PortRef::new(x, 0)).unwrap();
        g.validate().unwrap();
        (g, add)
    }

    #[test]
    fn isolated_adder_contains_only_adder_logic() {
        let (g, add) = graph_with_add();
        let mut nl = elaborate_isolated(&g, add).unwrap();
        nl.optimize();
        // Every live logic gate must belong to the adder unit.
        let live = nl.live_mask();
        for (id, gate) in nl.gates() {
            if live[id.index()] && gate.kind().is_logic() {
                assert_eq!(gate.origin(), Origin::Unit(add), "foreign gate {id}");
            }
        }
    }

    #[test]
    fn isolated_depth_is_positive_for_adder() {
        let (g, add) = graph_with_add();
        let mut nl = elaborate_isolated(&g, add).unwrap();
        nl.optimize();
        assert!(nl.max_gate_depth().unwrap() >= 3);
    }

    #[test]
    fn isolation_is_more_conservative_than_whole_circuit_for_trivial_units() {
        // A fork characterized alone still shows its control depth even if
        // the surrounding circuit would have optimized it away.
        let mut g = Graph::new("t");
        let bb = g.add_basic_block("bb0");
        let a = g.add_unit(UnitKind::Entry, "a", bb, 0).unwrap();
        let f = g.add_unit(UnitKind::fork(4), "f", bb, 0).unwrap();
        let x = g.add_unit(UnitKind::Exit, "x", bb, 0).unwrap();
        let s1 = g.add_unit(UnitKind::Sink, "s1", bb, 0).unwrap();
        let s2 = g.add_unit(UnitKind::Sink, "s2", bb, 0).unwrap();
        let s3 = g.add_unit(UnitKind::Sink, "s3", bb, 0).unwrap();
        g.connect(PortRef::new(a, 0), PortRef::new(f, 0)).unwrap();
        g.connect(PortRef::new(f, 0), PortRef::new(x, 0)).unwrap();
        g.connect(PortRef::new(f, 1), PortRef::new(s1, 0)).unwrap();
        g.connect(PortRef::new(f, 2), PortRef::new(s2, 0)).unwrap();
        g.connect(PortRef::new(f, 3), PortRef::new(s3, 0)).unwrap();
        g.validate().unwrap();
        let mut nl = elaborate_isolated(&g, f).unwrap();
        nl.optimize();
        assert!(nl.max_gate_depth().unwrap() >= 2, "fork ready tree depth");
    }
}
