//! Structural correspondence between two optimized netlists.
//!
//! The iterative flow elaborates nearly identical graphs over and over:
//! iteration *i+1* differs from iteration *i* by a handful of buffers, so
//! almost every logic cone survives unchanged — only its [`GateId`]s
//! shift, because elaboration numbers gates by creation order and the new
//! buffers interleave. This module recovers the correspondence purely
//! structurally, so downstream consumers (the FlowMap labeler) can reuse
//! per-gate results from the previous run.
//!
//! The matching is built in two phases:
//!
//! 1. **Startpoints** (constants, primary inputs, register outputs) are
//!    paired by `(origin, kind, ordinal)`: the *n*-th live startpoint of a
//!    given kind created for a given dataflow unit or channel matches the
//!    *n*-th such startpoint of the other netlist. Elaboration emits each
//!    unit's gates in a fixed order independent of the buffer
//!    configuration, so the pairing is stable exactly where reuse matters.
//! 2. **Logic gates** are matched in topological order by *recursive cone
//!    equality*: a gate matches when a previous-netlist gate of the same
//!    kind has the matched images of its resolved fanins, **in the same
//!    order**. Fanin order is deliberately not canonicalized — downstream
//!    cut computations walk fanins in order, and only an order-preserving
//!    isomorphism guarantees they reproduce bit-identical results.
//!
//! A matched gate therefore has its *entire* fanin cone matched, and the
//! two cones are order-isomorphic DAGs. Any deterministic pure function of
//! the cone structure (a FlowMap label, a min-cut) computed on one side is
//! valid on the other after id translation. Soundness does not depend on
//! the startpoint pairing being semantically "right": labels and cuts
//! treat startpoints as opaque leaves, so any injective pairing yields
//! correct reuse — pairing quality only affects the hit rate.

use crate::gate::{GateId, GateKind, Origin};
use crate::netgraph::Netlist;
use dataflow::collections::HashMap;

/// A gate-level correspondence `cur → prev` (and its inverse) between the
/// live gates of two netlists, as produced by [`match_netlists`].
#[derive(Debug, Default)]
pub struct NetlistMatching {
    /// Current-netlist gate → previous-netlist gate.
    pub cur_to_prev: HashMap<GateId, GateId>,
    /// Previous-netlist gate → current-netlist gate (the inverse map).
    pub prev_to_cur: HashMap<GateId, GateId>,
    /// Live logic gates of the current netlist that found a match.
    pub matched_logic: usize,
    /// Live logic gates of the current netlist left unmatched.
    pub unmatched_logic: usize,
}

impl NetlistMatching {
    /// Fraction of current live logic gates matched (0 when none exist).
    pub fn match_rate(&self) -> f64 {
        let total = self.matched_logic + self.unmatched_logic;
        if total == 0 {
            0.0
        } else {
            self.matched_logic as f64 / total as f64
        }
    }

    /// Flattens the two hash maps into gate-index-addressed arrays for hot
    /// consumers (the seeded FlowMap labeler translates every cut gate of
    /// every reused label through these): `(cur_of_prev, prev_of_cur)`,
    /// indexed by `GateId::index()` with `u32::MAX` marking an unmatched
    /// gate. Entries beyond the given gate counts are dropped — callers
    /// pass the true gate counts of the two netlists.
    pub fn dense_maps(&self, prev_gates: usize, cur_gates: usize) -> (Vec<u32>, Vec<u32>) {
        let mut cur_of_prev = vec![u32::MAX; prev_gates];
        let mut prev_of_cur = vec![u32::MAX; cur_gates];
        for (&c, &p) in &self.cur_to_prev {
            if let Some(slot) = prev_of_cur.get_mut(c.index()) {
                *slot = p.index() as u32;
            }
        }
        for (&p, &c) in &self.prev_to_cur {
            if let Some(slot) = cur_of_prev.get_mut(p.index()) {
                *slot = c.index() as u32;
            }
        }
        (cur_of_prev, prev_of_cur)
    }
}

/// Resolved, adjacent-deduplicated fanins — the exact view downstream cut
/// computation uses, so matched cones are order-isomorphic under it.
fn resolved_fanins(nl: &Netlist, id: GateId) -> Vec<GateId> {
    let mut f: Vec<GateId> = nl.gate(id).fanin().iter().map(|&x| nl.resolve(x)).collect();
    f.dedup();
    f
}

/// Live startpoints grouped and ordered: `(origin, kind) → [GateId...]` in
/// gate-creation order. `GateKind::Const` carries its value, so constants
/// group by value automatically.
fn startpoint_groups(nl: &Netlist) -> HashMap<(Origin, GateKind), Vec<GateId>> {
    let live = nl.live_mask();
    let mut groups: HashMap<(Origin, GateKind), Vec<GateId>> = HashMap::default();
    for (id, g) in nl.gates() {
        if live[id.index()] && g.kind().is_startpoint() {
            groups.entry((g.origin(), g.kind())).or_default().push(id);
        }
    }
    groups
}

/// Builds the structural matching from `prev` to `cur`.
///
/// Both netlists must be optimized ([`Netlist::optimize`]): the matcher
/// relies on structural hashing having removed duplicate live logic gates,
/// so the `(kind, ordered fanins)` key identifies at most one live gate
/// per netlist. Duplicate keys (possible among gates optimization left
/// dead, or in unoptimized input) are dropped from the candidate table
/// rather than guessed at.
pub fn match_netlists(prev: &Netlist, cur: &Netlist) -> NetlistMatching {
    let mut m = NetlistMatching::default();

    // Phase 1: startpoints by (origin, kind, ordinal).
    let prev_groups = startpoint_groups(prev);
    for (key, cur_ids) in startpoint_groups(cur) {
        if let Some(prev_ids) = prev_groups.get(&key) {
            for (&c, &p) in cur_ids.iter().zip(prev_ids.iter()) {
                m.cur_to_prev.insert(c, p);
                m.prev_to_cur.insert(p, c);
            }
        }
    }

    // Candidate table: (kind, resolved fanins) → unique live prev gate.
    let prev_live = prev.live_mask();
    let mut table: HashMap<(GateKind, Vec<GateId>), Option<GateId>> = HashMap::default();
    for (id, g) in prev.gates() {
        if !prev_live[id.index()] || !g.kind().is_logic() {
            continue;
        }
        table
            .entry((g.kind(), resolved_fanins(prev, id)))
            .and_modify(|slot| *slot = None) // duplicate key: refuse to match
            .or_insert(Some(id));
    }

    // Phase 2: logic gates in topological order, so a gate's fanins are
    // decided before the gate itself.
    let Ok(order) = cur.topo_logic() else {
        // A combinational cycle means mapping will fail anyway; return the
        // startpoint-only matching.
        return m;
    };
    let mut key_buf: Vec<GateId> = Vec::new();
    for id in order {
        let g = cur.gate(id);
        if !g.kind().is_logic() {
            continue; // skip aliases
        }
        key_buf.clear();
        let mut all_matched = true;
        for f in resolved_fanins(cur, id) {
            match m.cur_to_prev.get(&f) {
                Some(&p) => key_buf.push(p),
                None => {
                    all_matched = false;
                    break;
                }
            }
        }
        let hit = if all_matched {
            table
                .get(&(g.kind(), key_buf.clone()))
                .copied()
                .flatten()
                // A prev gate may only be claimed once (injectivity).
                .filter(|p| !m.prev_to_cur.contains_key(p))
        } else {
            None
        };
        match hit {
            Some(p) => {
                m.cur_to_prev.insert(id, p);
                m.prev_to_cur.insert(p, id);
                m.matched_logic += 1;
            }
            None => m.unmatched_logic += 1,
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: Origin = Origin::External;

    #[test]
    fn identical_structure_matches_fully() {
        let build = |shift: bool| {
            let mut nl = Netlist::new();
            if shift {
                // Dead padding: shifts all subsequent gate ids.
                let _pad = nl.input(Origin::Channel(dataflow::ChannelId::from_raw(9)));
            }
            let a = nl.input(O);
            let b = nl.input(O);
            let g1 = nl.and(a, b, O);
            let g2 = nl.xor(g1, a, O);
            let r = nl.reg(g2, O);
            let g3 = nl.or(r, b, O);
            nl.add_keep(g3, "out");
            nl.optimize();
            (nl, g3)
        };
        let (prev, prev_root) = build(false);
        let (cur, cur_root) = build(true);
        let m = match_netlists(&prev, &cur);
        assert_eq!(m.unmatched_logic, 0, "all logic must match");
        assert!(m.matched_logic >= 3);
        assert_eq!(m.cur_to_prev[&cur_root], prev_root);
        assert_eq!(m.prev_to_cur[&prev_root], cur_root);
        assert!((m.match_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn changed_cone_stays_unmatched_but_rest_matches() {
        let build = |flip: bool| {
            let mut nl = Netlist::new();
            let a = nl.input(O);
            let b = nl.input(O);
            let c = nl.input(O);
            let left = nl.and(a, b, O);
            let right = if flip {
                nl.xor(b, c, O)
            } else {
                nl.or(b, c, O)
            };
            let out = nl.mux(left, right, a, O);
            nl.add_keep(out, "out");
            nl.optimize();
            (nl, left, right, out)
        };
        let (prev, _pl, _pr, _po) = build(false);
        let (cur, cl, cr, co) = build(true);
        let m = match_netlists(&prev, &cur);
        assert!(
            m.cur_to_prev.contains_key(&cl),
            "untouched AND cone must match"
        );
        assert!(
            !m.cur_to_prev.contains_key(&cr),
            "flipped gate must not match"
        );
        assert!(
            !m.cur_to_prev.contains_key(&co),
            "consumer of a changed cone must not match"
        );
    }

    #[test]
    fn fanin_order_is_significant() {
        // mux(s, a, b) vs mux(s, b, a): same sorted fanins, different
        // function and different cone walk — must not match.
        let build = |swap: bool| {
            let mut nl = Netlist::new();
            let s = nl.input(O);
            let a = nl.input(O);
            let b = nl.input(O);
            let x = nl.and(a, s, O);
            let y = nl.or(b, s, O);
            let out = if swap {
                nl.mux(s, y, x, O)
            } else {
                nl.mux(s, x, y, O)
            };
            nl.add_keep(out, "out");
            nl.optimize();
            (nl, out)
        };
        let (prev, _) = build(false);
        let (cur, cur_out) = build(true);
        let m = match_netlists(&prev, &cur);
        assert!(
            !m.cur_to_prev.contains_key(&cur_out),
            "swapped mux operands must not match"
        );
    }

    #[test]
    fn matching_is_injective() {
        let mut prev = Netlist::new();
        let a = prev.input(O);
        let b = prev.input(O);
        let g = prev.and(a, b, O);
        prev.add_keep(g, "out");
        prev.optimize();
        let mut cur = Netlist::new();
        let a2 = cur.input(O);
        let b2 = cur.input(O);
        let g2 = cur.and(a2, b2, O);
        cur.add_keep(g2, "out");
        cur.optimize();
        let m = match_netlists(&prev, &cur);
        assert_eq!(m.cur_to_prev.len(), m.prev_to_cur.len());
        for (c, p) in &m.cur_to_prev {
            assert_eq!(m.prev_to_cur[p], *c);
        }
    }

    #[test]
    fn startpoints_pair_by_origin_and_ordinal() {
        let u7 = Origin::Unit(dataflow::UnitId::from_raw(7));
        let mk = |extra_channel_gate: bool| {
            let mut nl = Netlist::new();
            if extra_channel_gate {
                let d = nl.input(Origin::Channel(dataflow::ChannelId::from_raw(3)));
                let r = nl.reg(d, Origin::Channel(dataflow::ChannelId::from_raw(3)));
                nl.add_keep(r, "buf");
            }
            let i0 = nl.input(u7);
            let i1 = nl.input(u7);
            let g = nl.and(i0, i1, u7);
            nl.add_keep(g, "out");
            nl.optimize();
            (nl, i0, i1)
        };
        let (prev, p0, p1) = mk(false);
        let (cur, c0, c1) = mk(true);
        let m = match_netlists(&prev, &cur);
        assert_eq!(m.cur_to_prev[&c0], p0);
        assert_eq!(m.cur_to_prev[&c1], p1);
    }
}
