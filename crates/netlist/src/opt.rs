//! Structural logic optimization.
//!
//! Implements the rewrites a BLIF netlist would undergo in ABC before
//! technology mapping: alias elimination, constant propagation, Boolean
//! identities (idempotence, complementation, double negation, mux
//! degeneration) and structural hashing (common-subexpression merging).
//! The rewrites are applied to fixpoint.
//!
//! Crucially, the rewrites ignore unit boundaries: a join's AND of two
//! valids may merge with identical logic inside a neighbouring fork — the
//! cross-unit simplification phenomenon at the heart of the paper.

use crate::gate::{GateId, GateKind};
use crate::netgraph::{strash_key, Netlist, StrashMap};

/// Statistics reported by [`Netlist::optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OptStats {
    /// Number of full rewrite passes executed.
    pub passes: u32,
    /// Number of gate-level rewrites applied (replacements + fanin updates).
    pub rewrites: u64,
    /// Live gate count before optimization.
    pub live_before: usize,
    /// Live gate count after optimization.
    pub live_after: usize,
    /// Convenience: `live_before - live_after`.
    pub removed_gates: usize,
}

/// Union-find style replacement table with path compression.
struct Repl {
    to: Vec<GateId>,
}

impl Repl {
    fn new(n: usize) -> Self {
        Repl {
            to: (0..n as u32).map(GateId::from_raw).collect(),
        }
    }

    /// Extends the table with identity entries for newly allocated gates.
    fn ensure(&mut self, n: usize) {
        while self.to.len() < n {
            self.to.push(GateId::from_raw(self.to.len() as u32));
        }
    }

    fn find(&mut self, g: GateId) -> GateId {
        let parent = self.to[g.index()];
        if parent == g {
            return g;
        }
        let root = self.find(parent);
        self.to[g.index()] = root;
        root
    }

    fn union_to(&mut self, from: GateId, to: GateId) {
        let to = self.find(to);
        let from = self.find(from);
        if from != to {
            self.to[from.index()] = to;
        }
    }
}

impl Netlist {
    /// Optimizes the netlist in place and returns statistics.
    ///
    /// Runs alias elimination, constant propagation, Boolean identities and
    /// structural hashing to fixpoint, then redirects every fanin and keep
    /// through the replacement table. Dead gates remain allocated but
    /// unreachable (ids stay stable); liveness queries skip them.
    pub fn optimize(&mut self) -> OptStats {
        let live_before = self.num_live_gates();
        let mut repl = Repl::new(self.num_gates());
        let mut rewrites = 0u64;
        let mut passes = 0u32;
        loop {
            passes += 1;
            repl.ensure(self.num_gates());
            let changed = self.optimize_pass(&mut repl, &mut rewrites);
            if !changed || passes >= 64 {
                break;
            }
        }
        // Final rewrite of all fanins and keeps through the table.
        repl.ensure(self.num_gates());
        for i in 0..self.num_gates() {
            let id = GateId::from_raw(i as u32);
            let fanin = self.gate(id).fanin().to_vec();
            let new: Vec<GateId> = fanin.iter().map(|&f| repl.find(f)).collect();
            if new != fanin {
                self.gate_mut(id).fanin = new;
            }
        }
        let keeps: Vec<(GateId, String)> = self
            .keeps()
            .iter()
            .map(|(g, n)| (repl.find(*g), n.clone()))
            .collect();
        self.set_keeps(keeps);
        let live_after = self.num_live_gates();
        OptStats {
            passes,
            rewrites,
            live_before,
            live_after,
            removed_gates: live_before.saturating_sub(live_after),
        }
    }

    fn optimize_pass(&mut self, repl: &mut Repl, rewrites: &mut u64) -> bool {
        let mut changed = false;
        let mut strash: StrashMap = StrashMap::default();
        for i in 0..self.num_gates() {
            let id = GateId::from_raw(i as u32);
            if repl.find(id) != id {
                continue; // already replaced
            }
            // Canonicalize fanins through the replacement table.
            let kind = self.gate(id).kind();
            let fanin: Vec<GateId> = self
                .gate(id)
                .fanin()
                .iter()
                .map(|&f| repl.find(f))
                .collect();
            if fanin != self.gate(id).fanin() {
                self.gate_mut(id).fanin = fanin.clone();
                *rewrites += 1;
                changed = true;
            }
            if let Some(target) = self.simplify(kind, &fanin) {
                repl.ensure(self.num_gates()); // simplify may allocate
                if target != id {
                    repl.union_to(id, target);
                    *rewrites += 1;
                    changed = true;
                    continue;
                }
            }
            // Structural hashing (not for registers: state is not merged).
            if kind.is_logic() {
                let key = strash_key(self.gate(id));
                if let Some(&other) = strash.get(&key) {
                    if other != id {
                        repl.union_to(id, other);
                        *rewrites += 1;
                        changed = true;
                    }
                } else {
                    strash.insert(key, id);
                }
            }
        }
        changed
    }

    /// Value of a gate if it is a constant, after resolution.
    fn const_of(&self, id: GateId) -> Option<bool> {
        match self.gate(id).kind() {
            GateKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// `true` if `a` is the complement of `b` (one is NOT of the other).
    fn is_complement(&self, a: GateId, b: GateId) -> bool {
        let ga = self.gate(a);
        let gb = self.gate(b);
        (ga.kind() == GateKind::Not && ga.fanin()[0] == b)
            || (gb.kind() == GateKind::Not && gb.fanin()[0] == a)
    }

    /// Applies one local rewrite; returns the replacement gate if any.
    ///
    /// May allocate a new gate (e.g. `XOR(x,1) → NOT(x)`), which later
    /// passes will canonicalize further.
    fn simplify(&mut self, kind: GateKind, fanin: &[GateId]) -> Option<GateId> {
        match kind {
            GateKind::Alias => Some(fanin[0]),
            GateKind::Not => {
                if let Some(v) = self.const_of(fanin[0]) {
                    return Some(self.constant(!v));
                }
                let inner = self.gate(fanin[0]);
                if inner.kind() == GateKind::Not {
                    return Some(inner.fanin()[0]);
                }
                None
            }
            GateKind::And => {
                let (a, b) = (fanin[0], fanin[1]);
                match (self.const_of(a), self.const_of(b)) {
                    (Some(false), _) | (_, Some(false)) => Some(self.constant(false)),
                    (Some(true), _) => Some(b),
                    (_, Some(true)) => Some(a),
                    _ if a == b => Some(a),
                    _ if self.is_complement(a, b) => Some(self.constant(false)),
                    _ => None,
                }
            }
            GateKind::Or => {
                let (a, b) = (fanin[0], fanin[1]);
                match (self.const_of(a), self.const_of(b)) {
                    (Some(true), _) | (_, Some(true)) => Some(self.constant(true)),
                    (Some(false), _) => Some(b),
                    (_, Some(false)) => Some(a),
                    _ if a == b => Some(a),
                    _ if self.is_complement(a, b) => Some(self.constant(true)),
                    _ => None,
                }
            }
            GateKind::Xor => {
                let (a, b) = (fanin[0], fanin[1]);
                match (self.const_of(a), self.const_of(b)) {
                    (Some(va), Some(vb)) => Some(self.constant(va ^ vb)),
                    (Some(false), _) => Some(b),
                    (_, Some(false)) => Some(a),
                    (Some(true), _) => {
                        let origin = self.gate(b).origin();
                        Some(self.not(b, origin))
                    }
                    (_, Some(true)) => {
                        let origin = self.gate(a).origin();
                        Some(self.not(a, origin))
                    }
                    _ if a == b => Some(self.constant(false)),
                    _ if self.is_complement(a, b) => Some(self.constant(true)),
                    _ => None,
                }
            }
            GateKind::Mux => {
                let (s, a, b) = (fanin[0], fanin[1], fanin[2]);
                if let Some(vs) = self.const_of(s) {
                    return Some(if vs { a } else { b });
                }
                if a == b {
                    return Some(a);
                }
                match (self.const_of(a), self.const_of(b)) {
                    // mux(s,1,0) = s ; mux(s,0,1) = !s
                    (Some(true), Some(false)) => Some(s),
                    (Some(false), Some(true)) => {
                        let origin = self.gate(s).origin();
                        Some(self.not(s, origin))
                    }
                    // mux(s,a,0) = s & a ; mux(s,0,b) = !s & b
                    (_, Some(false)) => {
                        let origin = self.gate(s).origin();
                        Some(self.and(s, a, origin))
                    }
                    (Some(false), _) => {
                        let origin = self.gate(s).origin();
                        let ns = self.not(s, origin);
                        Some(self.and(ns, b, origin))
                    }
                    // mux(s,1,b) = s | b ; mux(s,a,1) = !s | a
                    (Some(true), _) => {
                        let origin = self.gate(s).origin();
                        Some(self.or(s, b, origin))
                    }
                    (_, Some(true)) => {
                        let origin = self.gate(s).origin();
                        let ns = self.not(s, origin);
                        Some(self.or(ns, a, origin))
                    }
                    _ if s == a => {
                        // mux(s,s,b) = s | b
                        let origin = self.gate(s).origin();
                        Some(self.or(s, b, origin))
                    }
                    _ if s == b => {
                        // mux(s,a,s) = s & a
                        let origin = self.gate(s).origin();
                        Some(self.and(s, a, origin))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Origin;

    const O: Origin = Origin::External;

    #[test]
    fn removes_aliases() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let al = nl.alias(a, O);
        let n = nl.not(al, O);
        nl.add_keep(n, "out");
        nl.optimize();
        assert_eq!(nl.gate(n).fanin()[0], a);
    }

    #[test]
    fn folds_constants() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let one = nl.constant(true);
        let g = nl.and(a, one, O); // = a
        let r = nl.reg(g, O);
        nl.add_keep(r, "out");
        nl.optimize();
        assert_eq!(nl.gate(r).fanin()[0], a);
    }

    #[test]
    fn double_negation_cancels() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let n1 = nl.not(a, O);
        let n2 = nl.not(n1, O);
        let g = nl.or(n2, a, O); // = a after rewrites
        let r = nl.reg(g, O);
        nl.add_keep(r, "out");
        nl.optimize();
        assert_eq!(nl.gate(r).fanin()[0], a);
    }

    #[test]
    fn strash_merges_duplicates_across_origins() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let b = nl.input(O);
        let u0 = Origin::Unit(dataflow::UnitId::from_raw(0));
        let u1 = Origin::Unit(dataflow::UnitId::from_raw(1));
        let g1 = nl.and(a, b, u0);
        let g2 = nl.and(b, a, u1); // commutative duplicate from another unit
        let r1 = nl.reg(g1, O);
        let r2 = nl.reg(g2, O);
        nl.add_keep(r1, "o1");
        nl.add_keep(r2, "o2");
        let stats = nl.optimize();
        assert_eq!(nl.gate(r1).fanin()[0], nl.gate(r2).fanin()[0]);
        assert!(stats.rewrites > 0);
        assert_eq!(nl.num_live_logic(), 1);
    }

    #[test]
    fn complement_laws() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let na = nl.not(a, O);
        let g_and = nl.and(a, na, O); // 0
        let g_or = nl.or(a, na, O); // 1
        let m = nl.mux(g_or, g_and, a, O); // mux(1, 0, a) = 0
        let r = nl.reg(m, O);
        nl.add_keep(r, "out");
        nl.optimize();
        assert_eq!(
            nl.gate(nl.gate(r).fanin()[0]).kind(),
            GateKind::Const(false)
        );
    }

    #[test]
    fn xor_with_one_becomes_not() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let one = nl.constant(true);
        let g = nl.xor(a, one, O);
        let r = nl.reg(g, O);
        nl.add_keep(r, "out");
        nl.optimize();
        let d = nl.gate(r).fanin()[0];
        assert_eq!(nl.gate(d).kind(), GateKind::Not);
        assert_eq!(nl.gate(d).fanin()[0], a);
    }

    #[test]
    fn mux_degenerations() {
        let mut nl = Netlist::new();
        let s = nl.input(O);
        let a = nl.input(O);
        let zero = nl.constant(false);
        let g = nl.mux(s, a, zero, O); // = s & a
        let r = nl.reg(g, O);
        nl.add_keep(r, "out");
        nl.optimize();
        let d = nl.gate(r).fanin()[0];
        assert_eq!(nl.gate(d).kind(), GateKind::And);
    }

    #[test]
    fn idempotence() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let g = nl.or(a, a, O);
        let r = nl.reg(g, O);
        nl.add_keep(r, "out");
        nl.optimize();
        assert_eq!(nl.gate(r).fanin()[0], a);
    }

    #[test]
    fn stats_report_shrinkage() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let one = nl.constant(true);
        let g1 = nl.and(a, one, O);
        let g2 = nl.and(g1, one, O);
        let r = nl.reg(g2, O);
        nl.add_keep(r, "out");
        let stats = nl.optimize();
        assert!(stats.live_after < stats.live_before);
        assert_eq!(stats.removed_gates, stats.live_before - stats.live_after);
    }

    #[test]
    fn registers_are_never_merged() {
        let mut nl = Netlist::new();
        let a = nl.input(O);
        let r1 = nl.reg(a, O);
        let r2 = nl.reg(a, O);
        let g = nl.xor(r1, r2, O);
        nl.add_keep(g, "out");
        nl.optimize();
        assert_eq!(nl.num_live_regs(), 2);
    }
}
