//! Word-level datapath constructions decomposed into gates.
//!
//! Arithmetic uses log-depth structures (Kogge–Stone prefix adders) rather
//! than ripple carry: LUT-based FPGAs without a carry-chain abstraction map
//! prefix adders to a handful of logic levels, which keeps intra-unit
//! combinational paths inside the paper's 6-logic-level budget (paths
//! *inside* a unit can never be broken by buffers).

use crate::gate::{GateId, Origin};
use crate::netgraph::Netlist;

/// Bitwise NOT of a word.
pub fn word_not(nl: &mut Netlist, a: &[GateId], o: Origin) -> Vec<GateId> {
    a.iter().map(|&x| nl.not(x, o)).collect()
}

/// Bitwise AND of two equal-width words.
pub fn word_and(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> Vec<GateId> {
    a.iter().zip(b).map(|(&x, &y)| nl.and(x, y, o)).collect()
}

/// Bitwise OR of two equal-width words.
pub fn word_or(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> Vec<GateId> {
    a.iter().zip(b).map(|(&x, &y)| nl.or(x, y, o)).collect()
}

/// Bitwise XOR of two equal-width words.
pub fn word_xor(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> Vec<GateId> {
    a.iter().zip(b).map(|(&x, &y)| nl.xor(x, y, o)).collect()
}

/// Per-bit 2:1 mux: `sel ? a : b`.
pub fn word_mux(
    nl: &mut Netlist,
    sel: GateId,
    a: &[GateId],
    b: &[GateId],
    o: Origin,
) -> Vec<GateId> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| nl.mux(sel, x, y, o))
        .collect()
}

/// Left shift by a constant (zero fill); width preserved.
pub fn shl_const(nl: &mut Netlist, a: &[GateId], amount: usize, o: Origin) -> Vec<GateId> {
    let zero = nl.constant(false);
    let _ = o;
    (0..a.len())
        .map(|i| if i >= amount { a[i - amount] } else { zero })
        .collect()
}

/// Logical right shift by a constant (zero fill); width preserved.
pub fn shr_const(nl: &mut Netlist, a: &[GateId], amount: usize, o: Origin) -> Vec<GateId> {
    let zero = nl.constant(false);
    let _ = o;
    (0..a.len())
        .map(|i| {
            if i + amount < a.len() {
                a[i + amount]
            } else {
                zero
            }
        })
        .collect()
}

/// A constant word (little-endian bit order, like all words here).
pub fn const_word(nl: &mut Netlist, value: u64, width: usize) -> Vec<GateId> {
    (0..width)
        .map(|i| nl.constant((value >> i) & 1 != 0))
        .collect()
}

/// Kogge–Stone prefix adder with carry-in; returns `width` sum bits and the
/// carry-out.
///
/// Depth is `O(log2 width)` gate levels — the fast-adder abstraction for
/// LUT fabrics.
pub fn add_prefix(
    nl: &mut Netlist,
    a: &[GateId],
    b: &[GateId],
    cin: GateId,
    o: Origin,
) -> (Vec<GateId>, GateId) {
    assert_eq!(a.len(), b.len(), "adder operand widths differ");
    let w = a.len();
    if w == 0 {
        return (Vec::new(), cin);
    }
    // Bit-level generate/propagate.
    let mut g: Vec<GateId> = Vec::with_capacity(w);
    let mut p: Vec<GateId> = Vec::with_capacity(w);
    for i in 0..w {
        g.push(nl.and(a[i], b[i], o));
        p.push(nl.xor(a[i], b[i], o));
    }
    let p_raw = p.clone();
    // Fold carry-in into bit 0: g0' = g0 | (p0 & cin).
    let t = nl.and(p[0], cin, o);
    g[0] = nl.or(g[0], t, o);
    // Kogge–Stone prefix: after the scan, g[i] = carry out of bit i.
    let mut dist = 1;
    while dist < w {
        let (mut ng, mut np) = (g.clone(), p.clone());
        for i in dist..w {
            let t = nl.and(p[i], g[i - dist], o);
            ng[i] = nl.or(g[i], t, o);
            np[i] = nl.and(p[i], p[i - dist], o);
        }
        g = ng;
        p = np;
        dist *= 2;
    }
    // sum_i = p_raw_i ^ carry_{i-1}; carry_{-1} = cin.
    let mut sum = Vec::with_capacity(w);
    for i in 0..w {
        let c_in_i = if i == 0 { cin } else { g[i - 1] };
        sum.push(nl.xor(p_raw[i], c_in_i, o));
    }
    (sum, g[w - 1])
}

/// Two's-complement addition (width-preserving).
pub fn add(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> Vec<GateId> {
    let zero = nl.constant(false);
    add_prefix(nl, a, b, zero, o).0
}

/// Two's-complement subtraction `a - b` (width-preserving).
pub fn sub(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> Vec<GateId> {
    let nb = word_not(nl, b, o);
    let one = nl.constant(true);
    add_prefix(nl, a, &nb, one, o).0
}

/// Equality comparison: single-bit result.
pub fn eq(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> GateId {
    if a.is_empty() {
        return nl.constant(true);
    }
    let diffs: Vec<GateId> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let x_ne_y = nl.xor(x, y, o);
            nl.not(x_ne_y, o)
        })
        .collect();
    nl.and_tree(&diffs, o)
}

/// Signed less-than `a < b`: single-bit result.
///
/// Computed as `sign(a - b) XOR overflow(a - b)`.
pub fn lt_signed(nl: &mut Netlist, a: &[GateId], b: &[GateId], o: Origin) -> GateId {
    assert!(!a.is_empty(), "signed compare needs at least one bit");
    let w = a.len();
    let nb = word_not(nl, b, o);
    let one = nl.constant(true);
    let (diff, _) = add_prefix(nl, a, &nb, one, o);
    let a_s = a[w - 1];
    let b_s = b[w - 1];
    let d_s = diff[w - 1];
    // Overflow of a - b: operands of the internal addition are a and !b, so
    // ov = (a_s == !b_s) & (d_s != a_s) = (a_s ^ b_s) & (a_s ^ d_s).
    let signs_differ = nl.xor(a_s, b_s, o);
    let flipped = nl.xor(a_s, d_s, o);
    let ov = nl.and(signs_differ, flipped, o);
    nl.xor(d_s, ov, o)
}

/// One-hot select comparison: `sel == value` for a constant value.
pub fn sel_equals_const(nl: &mut Netlist, sel: &[GateId], value: usize, o: Origin) -> GateId {
    if sel.is_empty() {
        return nl.constant(value == 0);
    }
    let lits: Vec<GateId> = sel
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if (value >> i) & 1 != 0 {
                s
            } else {
                nl.not(s, o)
            }
        })
        .collect();
    nl.and_tree(&lits, o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistSim;

    const O: Origin = Origin::External;

    /// Drives `bits` input gates with the little-endian bits of `value`.
    fn drive(sim: &mut NetlistSim<'_>, bits: &[GateId], value: u64) {
        for (i, &b) in bits.iter().enumerate() {
            sim.set_input(b, (value >> i) & 1 != 0);
        }
    }

    fn read(sim: &NetlistSim<'_>, bits: &[GateId]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((sim.peek(b) as u64) << i))
    }

    fn inputs(nl: &mut Netlist, w: usize) -> Vec<GateId> {
        (0..w).map(|_| nl.input(O)).collect()
    }

    #[test]
    fn adder_is_correct_exhaustively_4bit() {
        let mut nl = Netlist::new();
        let a = inputs(&mut nl, 4);
        let b = inputs(&mut nl, 4);
        let s = add(&mut nl, &a, &b, O);
        for &g in &s {
            nl.add_keep(g, "s");
        }
        let mut sim = NetlistSim::new(&nl).unwrap();
        for va in 0..16u64 {
            for vb in 0..16u64 {
                drive(&mut sim, &a, va);
                drive(&mut sim, &b, vb);
                sim.settle();
                assert_eq!(read(&sim, &s), (va + vb) & 0xF, "{va}+{vb}");
            }
        }
    }

    #[test]
    fn subtractor_is_correct_exhaustively_4bit() {
        let mut nl = Netlist::new();
        let a = inputs(&mut nl, 4);
        let b = inputs(&mut nl, 4);
        let s = sub(&mut nl, &a, &b, O);
        for &g in &s {
            nl.add_keep(g, "s");
        }
        let mut sim = NetlistSim::new(&nl).unwrap();
        for va in 0..16u64 {
            for vb in 0..16u64 {
                drive(&mut sim, &a, va);
                drive(&mut sim, &b, vb);
                sim.settle();
                assert_eq!(read(&sim, &s), va.wrapping_sub(vb) & 0xF, "{va}-{vb}");
            }
        }
    }

    #[test]
    fn adder_depth_is_logarithmic() {
        let mut nl = Netlist::new();
        let a = inputs(&mut nl, 16);
        let b = inputs(&mut nl, 16);
        let s = add(&mut nl, &a, &b, O);
        for &g in &s {
            nl.add_keep(g, "s");
        }
        let depth = nl.max_gate_depth().unwrap();
        // Prefix structure: gp (1) + cin-fold (2) + 4 prefix levels (2 each)
        // + final xor ≈ 12; ripple carry would be ≥ 32.
        assert!(depth <= 14, "depth {depth} not logarithmic");
    }

    #[test]
    fn signed_less_than_4bit() {
        let mut nl = Netlist::new();
        let a = inputs(&mut nl, 4);
        let b = inputs(&mut nl, 4);
        let lt = lt_signed(&mut nl, &a, &b, O);
        nl.add_keep(lt, "lt");
        let mut sim = NetlistSim::new(&nl).unwrap();
        for va in -8i64..8 {
            for vb in -8i64..8 {
                drive(&mut sim, &a, (va & 0xF) as u64);
                drive(&mut sim, &b, (vb & 0xF) as u64);
                sim.settle();
                assert_eq!(sim.peek(lt), va < vb, "{va} < {vb}");
            }
        }
    }

    #[test]
    fn equality_4bit() {
        let mut nl = Netlist::new();
        let a = inputs(&mut nl, 4);
        let b = inputs(&mut nl, 4);
        let e = eq(&mut nl, &a, &b, O);
        nl.add_keep(e, "eq");
        let mut sim = NetlistSim::new(&nl).unwrap();
        for va in 0..16u64 {
            for vb in 0..16u64 {
                drive(&mut sim, &a, va);
                drive(&mut sim, &b, vb);
                sim.settle();
                assert_eq!(sim.peek(e), va == vb);
            }
        }
    }

    #[test]
    fn const_shifts() {
        let mut nl = Netlist::new();
        let a = inputs(&mut nl, 8);
        let l = shl_const(&mut nl, &a, 3, O);
        let r = shr_const(&mut nl, &a, 2, O);
        for &g in l.iter().chain(&r) {
            nl.add_keep(g, "s");
        }
        let mut sim = NetlistSim::new(&nl).unwrap();
        drive(&mut sim, &a, 0b1011_0110);
        sim.settle();
        assert_eq!(read(&sim, &l), (0b1011_0110 << 3) & 0xFF);
        assert_eq!(read(&sim, &r), 0b1011_0110 >> 2);
    }

    #[test]
    fn select_const_comparator() {
        let mut nl = Netlist::new();
        let sel = inputs(&mut nl, 2);
        let hits: Vec<GateId> = (0..4)
            .map(|v| sel_equals_const(&mut nl, &sel, v, O))
            .collect();
        for &h in &hits {
            nl.add_keep(h, "h");
        }
        let mut sim = NetlistSim::new(&nl).unwrap();
        for v in 0..4u64 {
            drive(&mut sim, &sel, v);
            sim.settle();
            for (i, &h) in hits.iter().enumerate() {
                assert_eq!(sim.peek(h), i as u64 == v);
            }
        }
    }

    #[test]
    fn const_word_bits() {
        let mut nl = Netlist::new();
        let w = const_word(&mut nl, 0b1010, 4);
        let kinds: Vec<_> = w.iter().map(|&g| nl.gate(g).kind()).collect();
        use crate::GateKind::Const;
        assert_eq!(
            kinds,
            vec![Const(false), Const(true), Const(false), Const(true)]
        );
    }
}
