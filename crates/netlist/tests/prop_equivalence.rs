//! Property tests: logic optimization must preserve observable behaviour
//! of arbitrary random netlists, cycle by cycle.

use netlist::{GateId, Netlist, NetlistSim, Origin};
use proptest::prelude::*;

/// A recipe for one random gate.
#[derive(Debug, Clone)]
enum GateRecipe {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
    Reg(usize),
    RegEn(usize, usize),
}

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    prop_oneof![
        any::<usize>().prop_map(GateRecipe::Not),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::And(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::Or(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(s, a, b)| GateRecipe::Mux(s, a, b)),
        any::<usize>().prop_map(GateRecipe::Reg),
        (any::<usize>(), any::<usize>()).prop_map(|(e, d)| GateRecipe::RegEn(e, d)),
    ]
}

/// Builds a random netlist: `n_inputs` primary inputs, `recipes` gates
/// whose fanins are earlier gates (mod available), keeps on the last few.
fn build(n_inputs: usize, recipes: &[GateRecipe]) -> (Netlist, Vec<GateId>) {
    let o = Origin::External;
    let mut nl = Netlist::new();
    let mut pool: Vec<GateId> = (0..n_inputs).map(|_| nl.input(o)).collect();
    let inputs = pool.clone();
    for r in recipes {
        let pick = |i: usize| pool[i % pool.len()];
        let g = match *r {
            GateRecipe::Not(a) => {
                let a = pick(a);
                nl.not(a, o)
            }
            GateRecipe::And(a, b) => {
                let (a, b) = (pick(a), pick(b));
                nl.and(a, b, o)
            }
            GateRecipe::Or(a, b) => {
                let (a, b) = (pick(a), pick(b));
                nl.or(a, b, o)
            }
            GateRecipe::Xor(a, b) => {
                let (a, b) = (pick(a), pick(b));
                nl.xor(a, b, o)
            }
            GateRecipe::Mux(s, a, b) => {
                let (s, a, b) = (pick(s), pick(a), pick(b));
                nl.mux(s, a, b, o)
            }
            GateRecipe::Reg(d) => {
                let d = pick(d);
                nl.reg(d, o)
            }
            GateRecipe::RegEn(e, d) => {
                let (e, d) = (pick(e), pick(d));
                nl.reg_en(e, d, o)
            }
        };
        pool.push(g);
    }
    for (i, &g) in pool.iter().rev().take(4).enumerate() {
        nl.add_keep(g, format!("out{i}"));
    }
    (nl, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimization_preserves_behaviour(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..60),
        stimulus in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let (golden, inputs) = build(n_inputs, &recipes);
        let mut optimized = golden.clone();
        optimized.optimize();

        let mut sim_g = NetlistSim::new(&golden).expect("golden acyclic");
        let mut sim_o = NetlistSim::new(&optimized).expect("optimized acyclic");
        for &word in &stimulus {
            for (bit, &inp) in inputs.iter().enumerate() {
                let v = (word >> bit) & 1 != 0;
                sim_g.set_input(inp, v);
                sim_o.set_input(inp, v);
            }
            sim_g.step();
            sim_o.step();
            prop_assert_eq!(sim_g.observe(), sim_o.observe());
        }
    }

    #[test]
    fn optimization_never_grows_live_logic(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..60),
    ) {
        let (golden, _) = build(n_inputs, &recipes);
        let before = golden.num_live_logic();
        let mut optimized = golden;
        optimized.optimize();
        prop_assert!(optimized.num_live_logic() <= before);
    }

    #[test]
    fn optimization_is_idempotent(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..60),
    ) {
        // A second run over an already-optimized netlist must find nothing
        // left to do (the first run reached a fixpoint).
        let (golden, _) = build(n_inputs, &recipes);
        let mut optimized = golden;
        optimized.optimize();
        let after_first = optimized.num_live_gates();
        let stats = optimized.optimize();
        prop_assert_eq!(optimized.num_live_gates(), after_first);
        prop_assert_eq!(stats.removed_gates, 0);
    }
}
