//! `frequenz` — command-line front end for the mapping-aware frequency
//! regulation flow.
//!
//! ```text
//! frequenz list
//! frequenz run <kernel> [--flow iter|prev|seed] [--target N] [--lut-k N] [--vcd FILE]
//! frequenz dot <kernel> [--optimized]
//! frequenz blif <kernel>
//! ```

use frequenz::core::{
    measure, optimize_baseline, optimize_iterative, synthesize, FlowOptions, FlowResult,
};
use frequenz::dataflow::Graph;
use frequenz::hls::{kernels, Kernel};
use frequenz::netlist::write_blif;
use frequenz::sim::{Simulator, VcdTracer};
use std::io::Write as _;
use std::process::ExitCode;

fn kernel_by_name(name: &str) -> Option<Kernel> {
    Some(match name {
        "insertion_sort" => kernels::insertion_sort(32),
        "stencil_2d" => kernels::stencil_2d(8),
        "covariance" => kernels::covariance(8),
        "gsum" => kernels::gsum(128),
        "gsumif" => kernels::gsumif(128),
        "gaussian" => kernels::gaussian(8),
        "matrix" => kernels::matrix(8),
        "mvt" => kernels::mvt(8),
        "gemver" => kernels::gemver(8),
        _ => return None,
    })
}

const KERNEL_NAMES: [&str; 9] = [
    "insertion_sort",
    "stencil_2d",
    "covariance",
    "gsum",
    "gsumif",
    "gaussian",
    "matrix",
    "mvt",
    "gemver",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  frequenz list\n  frequenz run <kernel> [--flow iter|prev|seed] \
         [--target N] [--lut-k N] [--vcd FILE]\n  frequenz dot <kernel> [--optimized]\n  \
         frequenz blif <kernel>\n  frequenz dfg <kernel>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for n in KERNEL_NAMES {
                let k = kernel_by_name(n).expect("known kernel");
                println!(
                    "{:<15} {:>4} units {:>4} channels {:>2} loop rings",
                    n,
                    k.graph().num_units(),
                    k.graph().num_channels(),
                    k.back_edges().len()
                );
            }
            ExitCode::SUCCESS
        }
        Some("run") => cmd_run(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("blif") => cmd_blif(&args[1..]),
        Some("dfg") => cmd_dfg(&args[1..]),
        _ => usage(),
    }
}

fn parse_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(kernel) = kernel_by_name(name) else {
        eprintln!("unknown kernel {name:?}; try `frequenz list`");
        return ExitCode::FAILURE;
    };
    let mut opts = FlowOptions::default();
    if let Some(t) = parse_flag(args, "--target") {
        opts.target_levels = t.parse().unwrap_or(opts.target_levels);
    }
    if let Some(k) = parse_flag(args, "--lut-k") {
        opts.k = k.parse().unwrap_or(opts.k);
    }
    let flow = parse_flag(args, "--flow").unwrap_or("iter");

    let result: Result<(Graph, String), Box<dyn std::error::Error>> = (|| {
        Ok(match flow {
            "prev" => {
                let r = optimize_baseline(kernel.graph(), kernel.back_edges(), &opts)?;
                let d = describe(&r);
                (r.graph, d)
            }
            "seed" => (kernel.seeded_graph(), "seed buffers only".into()),
            _ => {
                let r = optimize_iterative(kernel.graph(), kernel.back_edges(), &opts)?;
                let d = describe(&r);
                (r.graph, d)
            }
        })
    })();
    let (graph, summary) = match result {
        Ok(x) => x,
        Err(e) => {
            eprintln!("flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{name}: {summary}");

    // Simulate (optionally with waveforms) and verify.
    let mut sim = match Simulator::new(&graph) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simulator construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let vcd_path = parse_flag(args, "--vcd");
    let run = |sim: &mut Simulator<'_>| -> Result<u64, Box<dyn std::error::Error>> {
        if let Some(path) = vcd_path {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            let mut vcd = VcdTracer::new(&graph, &mut w)?;
            let mut cycles = 0;
            while !sim.exited() {
                if cycles > kernel.max_cycles * 8 {
                    return Err("timeout".into());
                }
                sim.step()?;
                vcd.sample(sim)?;
                cycles += 1;
            }
            w.flush()?;
            Ok(cycles)
        } else {
            Ok(sim.run(kernel.max_cycles * 8)?.cycles)
        }
    };
    let cycles = match run(&mut sim) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (mem, expected) in &kernel.expected_mems {
        if sim.memory(*mem) != expected.as_slice() {
            eprintln!(
                "FAIL: memory {} deviates from reference",
                graph.memory(*mem).name()
            );
            return ExitCode::FAILURE;
        }
    }
    println!("simulated {cycles} cycles; outputs match the software reference");
    if let Some(path) = vcd_path {
        println!("waveforms written to {path}");
    }

    match measure(&graph, opts.k, kernel.max_cycles * 8) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("measurement failed: {e}"),
    }
    ExitCode::SUCCESS
}

fn describe(r: &FlowResult) -> String {
    format!(
        "{} buffers, {} logic levels, {} iteration(s), converged = {}",
        r.buffers.len(),
        r.achieved_levels,
        r.iterations.len(),
        r.converged
    )
}

fn cmd_dot(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(kernel) = kernel_by_name(name) else {
        eprintln!("unknown kernel {name:?}");
        return ExitCode::FAILURE;
    };
    let graph = if args.iter().any(|a| a == "--optimized") {
        match optimize_iterative(kernel.graph(), kernel.back_edges(), &FlowOptions::default()) {
            Ok(r) => r.graph,
            Err(e) => {
                eprintln!("flow failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        kernel.seeded_graph()
    };
    print!("{}", graph.to_dot());
    ExitCode::SUCCESS
}

fn cmd_dfg(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(kernel) = kernel_by_name(name) else {
        eprintln!("unknown kernel {name:?}");
        return ExitCode::FAILURE;
    };
    print!("{}", kernel.graph().to_dfg_text());
    ExitCode::SUCCESS
}

fn cmd_blif(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(kernel) = kernel_by_name(name) else {
        eprintln!("unknown kernel {name:?}");
        return ExitCode::FAILURE;
    };
    let g = kernel.seeded_graph();
    match synthesize(&g, 6) {
        Ok(synth) => {
            let stdout = std::io::stdout();
            if let Err(e) = write_blif(&synth.netlist, name, stdout.lock()) {
                eprintln!("blif export failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            ExitCode::FAILURE
        }
    }
}
