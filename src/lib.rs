//! Umbrella crate re-exporting the full mapping-aware frequency-regulation suite.
//!
//! See [`frequenz_core`] for the paper's contribution and the sub-crates for
//! the substrates (dataflow IR, gate netlist, LUT mapper, MILP solver,
//! elastic simulator, mini-HLS kernels).
pub use dataflow;
pub use frequenz_core as core;
pub use hls;
pub use lutmap;
pub use milp;
pub use netlist;
pub use sim;
