//! Offline stub of `serde_derive`.
//!
//! Emits empty impls of the stub marker traits in the sibling `serde`
//! stub. Only non-generic `struct`/`enum` items are supported — every
//! serde-derived type in this workspace is non-generic, and the stub
//! raises a compile error (rather than silently mis-expanding) if that
//! ever stops being true.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following the `struct`/`enum`
/// keyword. Returns `None` for generic items (a `<` follows the name).
fn type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(id) = &tok {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    _ => return None,
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        return None;
                    }
                }
                return Some(name);
            }
        }
    }
    None
}

fn impl_marker(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => "compile_error!(\"the offline serde_derive stub supports only non-generic structs and enums\");"
            .parse()
            .expect("error macro parses"),
    }
}

/// Stub `#[derive(Serialize)]`: an empty marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "serde::Serialize")
}

/// Stub `#[derive(Deserialize)]`: an empty marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "serde::Deserialize")
}
