//! Offline stub of [`criterion`](https://docs.rs/criterion).
//!
//! Provides just enough API for the workspace's benches to compile and
//! run without network access: each benchmark is timed with a short
//! warm-up followed by a fixed number of samples, and the mean wall-clock
//! time is printed. There are no statistics, plots, or baselines — swap
//! the workspace dependency back to crates-io for the real harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter label.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]),
/// mirroring the real crate's `IntoBenchmarkId` bound.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {name:<40} {:>12.3} µs/iter",
        b.mean.as_secs_f64() * 1e6
    );
}

/// The bench registry handed to every target function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name.into_name()),
            self.samples,
            f,
        );
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
