//! Offline stub of the [`serde`](https://serde.rs) facade.
//!
//! The workspace builds in an environment with no access to crates-io, so
//! the real `serde` cannot be resolved. Library crates gate their derives
//! behind a default-off `serde` cargo feature; when that feature is
//! enabled this stub supplies the trait *names* (and no-op derives via the
//! sibling `serde_derive` stub) so the annotated types still compile. No
//! actual serialization is performed — to get real serde, point the
//! workspace `serde` dependency back at the registry.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// The real trait is `Deserialize<'de>`; the stub drops the lifetime since
/// no deserializer ever runs.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
