//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 != 0
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
