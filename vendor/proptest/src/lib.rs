//! Offline stub of [`proptest`](https://docs.rs/proptest).
//!
//! The workspace builds with no network access, so the real proptest
//! cannot be resolved from crates-io. This stub implements the subset of
//! the API the workspace's property tests use, as a *deterministic*
//! harness: every test function derives its RNG seed from its module path
//! and name, so failures reproduce exactly across runs and machines.
//!
//! Deliberate departures from real proptest:
//!
//! - **No shrinking** — a failing case reports the generated inputs
//!   verbatim (they are printed with `Debug`), not a minimized one.
//! - **No persistence** — `proptest-regressions` files are ignored.
//! - **No `Arbitrary` derive** — only the primitive impls below.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of the `prop` module alias of the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Deterministic xorshift64* generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a), typically
    /// the test's `module_path!()::name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
