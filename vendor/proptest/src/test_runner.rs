//! Test-runner configuration, failure type, and the `proptest!` macro.

use std::fmt;

/// Runner knobs (only `cases` is honoured by the stub).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property, carrying its reason.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Rejects the current case with a message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Declares deterministic property tests.
///
/// Mirrors the real macro's surface: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        concat!(
                            "proptest case {}/{} failed: {}\ninputs:\n",
                            $("  ", stringify!($arg), " = {:?}\n"),+
                        ),
                        case + 1, config.cases, e, $($arg),+
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
