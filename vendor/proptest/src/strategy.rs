//! The `Strategy` trait and the combinators the workspace uses.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: `generate` produces a
/// plain value and failures are reported un-shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between strategies with identical value types.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
