//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A vector length: fixed or uniform in a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values drawn from `element`, with a fixed or ranged length.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
