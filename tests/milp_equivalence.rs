//! Engine-equivalence suite for the MILP solver: the sparse revised
//! simplex ([`milp::Engine::SparseRevised`]) must agree with the legacy
//! dense tableau ([`milp::Engine::DenseTableau`]) — same objective (within
//! tolerance), same feasibility verdict, same `truncated` flag — on
//! random LPs, random MILPs, and the nine kernels' *real* buffer-placement
//! models. The deterministic parallel branch-and-bound must additionally
//! be bit-identical across job counts.

use frequenz_core::{
    build_placement_model, compute_penalties, extract_cfdfcs, map_lut_edges, synthesize,
    FlowOptions, PlacementProblem, TimingGraph,
};
use milp::{Cmp, Engine, Model, Sense, Solution, SolveError, WarmStart};
use proptest::prelude::*;

/// A random mixed program: bounded continuous and binary variables with
/// small integer data, a handful of ≤/≥/= rows.
#[derive(Debug, Clone)]
struct RandomProgram {
    vars: Vec<(i8 /* hi */, i8 /* obj */, bool /* integer */)>,
    rows: Vec<(Vec<i8>, u8 /* 0 ≤, 1 ≥, 2 = */, i8)>,
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    (2usize..7).prop_flat_map(|n| {
        (
            prop::collection::vec((1i8..6, -5i8..6, any::<bool>()), n),
            prop::collection::vec((prop::collection::vec(-3i8..4, n), 0u8..3, -4i8..9), 1..6),
        )
            .prop_map(|(vars, rows)| RandomProgram { vars, rows })
    })
}

fn to_model(p: &RandomProgram, relax: bool) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let ids: Vec<_> = p
        .vars
        .iter()
        .enumerate()
        .map(|(i, &(hi, obj, integer))| {
            m.add_var(
                format!("x{i}"),
                0.0,
                hi as f64,
                obj as f64,
                integer && !relax,
            )
        })
        .collect();
    for (coef, op, rhs) in &p.rows {
        let terms: Vec<_> = ids
            .iter()
            .zip(coef)
            .filter(|(_, &c)| c != 0)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        if terms.is_empty() {
            continue;
        }
        let op = match op {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constraint(terms, op, *rhs as f64);
    }
    m
}

/// Solves `m` under both engines and checks the verdicts match.
fn assert_engines_agree(
    m: &mut Model,
    relaxation: bool,
) -> Result<(), proptest::test_runner::TestCaseError> {
    m.set_engine(Engine::DenseTableau);
    let dense = if relaxation {
        m.solve_relaxation()
    } else {
        m.solve()
    };
    m.set_engine(Engine::SparseRevised);
    let sparse = if relaxation {
        m.solve_relaxation()
    } else {
        m.solve()
    };
    match (&dense, &sparse) {
        (Ok(d), Ok(s)) => {
            prop_assert!(
                (d.objective - s.objective).abs() <= 1e-6 * (1.0 + d.objective.abs()),
                "objectives diverge: dense {} vs sparse {}",
                d.objective,
                s.objective
            );
            prop_assert_eq!(d.status, s.status, "status diverges");
            prop_assert_eq!(d.truncated, s.truncated, "truncated flag diverges");
        }
        // Presolve runs identically ahead of either engine, so structured
        // presolve infeasibility and simplex-discovered infeasibility are
        // the same verdict.
        (Err(d), Err(s)) if d.is_infeasible() && s.is_infeasible() => {}
        (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
        (d, s) => prop_assert!(false, "verdicts diverge: dense {d:?} vs sparse {s:?}"),
    }
    Ok(())
}

fn solution_bits(s: &Solution) -> (u64, u64, u64, u64, u64, Vec<u64>) {
    (
        s.nodes,
        s.pivots,
        s.nodes_pruned,
        s.cuts,
        s.objective.to_bits(),
        s.values.iter().map(|v| v.to_bits()).collect(),
    )
}

/// Asserts the sparse branch-and-bound is bit-identical at 1/2/8 jobs.
fn assert_jobs_invariant(m: &mut Model) -> Result<(), proptest::test_runner::TestCaseError> {
    m.set_engine(Engine::SparseRevised);
    m.set_jobs(1);
    let reference = m.solve().map(|s| solution_bits(&s));
    for jobs in [2usize, 8] {
        m.set_jobs(jobs);
        let got = m.solve().map(|s| solution_bits(&s));
        match (&reference, &got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "jobs={} diverged", jobs),
            (Err(a), Err(b)) => prop_assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "jobs={} error diverged",
                jobs
            ),
            (a, b) => prop_assert!(false, "jobs={jobs}: {a:?} vs {b:?}"),
        }
    }
    m.set_jobs(1);
    Ok(())
}

/// Checks a warm (dual-path) re-solve against a cold (primal) solve of the
/// same tightened program: same infeasible/unbounded classification, and on
/// success the same objective plus a warm solution that is genuinely
/// feasible for the tightened program. Alternate optima are routine on
/// these degenerate programs, so feasibility-at-the-same-objective is the
/// meaningful notion of "same solution" — value-by-value equality is not.
fn assert_warm_agrees_with_cold(
    q: &RandomProgram,
    warm: &Result<Solution, SolveError>,
    cold: &Result<Solution, SolveError>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    match (warm, cold) {
        (Ok(w), Ok(c)) => {
            prop_assert!(
                (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                "objectives diverge: warm {} vs cold {}",
                w.objective,
                c.objective
            );
            prop_assert_eq!(w.status, c.status, "status diverges");
            for (i, &(hi, _, _)) in q.vars.iter().enumerate() {
                prop_assert!(
                    w.values[i] >= -1e-6 && w.values[i] <= hi as f64 + 1e-6,
                    "warm value x{i}={} breaks bound [0, {hi}]",
                    w.values[i]
                );
            }
            for (coef, op, rhs) in &q.rows {
                if coef.iter().all(|&c| c == 0) {
                    continue; // dropped by to_model
                }
                let lhs: f64 = coef
                    .iter()
                    .zip(&w.values)
                    .map(|(&c, &x)| c as f64 * x)
                    .sum();
                let ok = match op {
                    0 => lhs <= *rhs as f64 + 1e-6,
                    1 => lhs >= *rhs as f64 - 1e-6,
                    _ => (lhs - *rhs as f64).abs() <= 1e-6,
                };
                prop_assert!(ok, "warm solution breaks row {coef:?} op{op} {rhs}");
            }
        }
        (Err(w), Err(c)) => {
            prop_assert!(
                w.is_infeasible() == c.is_infeasible()
                    && matches!(w, SolveError::Unbounded) == matches!(c, SolveError::Unbounded),
                "classifications diverge: warm {w:?} vs cold {c:?}"
            );
        }
        (w, c) => prop_assert!(false, "verdicts diverge: warm {w:?} vs cold {c:?}"),
    }
    Ok(())
}

/// Tightens one variable's upper bound below the base program's: the old
/// optimal vertex usually turns primal infeasible while the reduced costs
/// are untouched, which is exactly the regime the dual simplex re-solve
/// path must handle.
fn tightened(p: &RandomProgram, pick: u8) -> RandomProgram {
    let mut q = p.clone();
    let k = pick as usize % q.vars.len();
    q.vars[k].0 -= 1; // hi is drawn from 1..6, so this stays ≥ 0
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_agree_on_random_lps(p in random_program()) {
        let mut m = to_model(&p, true);
        assert_engines_agree(&mut m, true)?;
    }

    #[test]
    fn engines_agree_on_random_milps(p in random_program()) {
        let mut m = to_model(&p, false);
        assert_engines_agree(&mut m, false)?;
    }

    #[test]
    fn parallel_bnb_is_bit_identical_on_random_milps(p in random_program()) {
        let mut m = to_model(&p, false);
        assert_jobs_invariant(&mut m)?;
    }

    /// Cut validity (both families): every cut separated at the root LP
    /// optimum of a random binary program must (a) be violated by the root
    /// point that produced it and (b) hold at **every** feasible 0/1
    /// assignment — not just the optimum — since a cut that removes any
    /// integer point is simply wrong.
    #[test]
    fn root_cuts_never_remove_integer_points(p in binary_program()) {
        let m = to_model(&p, false);
        let rep = match milp::separate_root_cuts(&m) {
            Ok(r) => r,
            // Infeasible/unbounded roots have nothing to separate from.
            Err(_) => return Ok(()),
        };
        for c in &rep.cuts {
            let at = |x: &dyn Fn(usize) -> f64| -> f64 {
                c.terms.iter().map(|&(v, a)| a * x(v.index())).sum()
            };
            // (a) violated at the root point…
            let root = at(&|v| rep.root_values[v]);
            let violated = match c.op {
                Cmp::Le => root > c.rhs + 1e-7,
                Cmp::Ge => root < c.rhs - 1e-7,
                Cmp::Eq => (root - c.rhs).abs() > 1e-7,
            };
            prop_assert!(violated, "cut {c:?} not violated at root {:?}", rep.root_values);
            // (b) …and satisfied by every feasible integer assignment.
            let n = p.vars.len();
            for mask in 0u32..(1 << n) {
                let x = |i: usize| ((mask >> i) & 1) as f64;
                let feasible = p.rows.iter().all(|(coef, op, rhs)| {
                    if coef.iter().all(|&c| c == 0) {
                        return true; // dropped by to_model
                    }
                    let lhs: f64 =
                        coef.iter().enumerate().map(|(i, &c)| c as f64 * x(i)).sum();
                    match op {
                        0 => lhs <= *rhs as f64 + 1e-9,
                        1 => lhs >= *rhs as f64 - 1e-9,
                        _ => (lhs - *rhs as f64).abs() <= 1e-9,
                    }
                });
                if !feasible {
                    continue;
                }
                let act = at(&|v| x(v));
                let ok = match c.op {
                    Cmp::Le => act <= c.rhs + 1e-7,
                    Cmp::Ge => act >= c.rhs - 1e-7,
                    Cmp::Eq => (act - c.rhs).abs() <= 1e-7,
                };
                prop_assert!(ok, "cut {c:?} removes feasible point mask={mask:#b}");
            }
        }
    }

    /// Presolve preserves the mixed-integer optimum: the default solve
    /// (presolve + cuts on) must agree with the raw solve (both off) on
    /// random models — same objective, same infeasibility verdict.
    #[test]
    fn presolved_optimum_matches_unpresolved_oracle(p in random_program()) {
        let strengthened = to_model(&p, false);
        let mut oracle = to_model(&p, false);
        oracle.set_presolve(false);
        oracle.set_cut_rounds(0);
        match (strengthened.solve(), oracle.solve()) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    (a.objective - b.objective).abs() <= 1e-6 * (1.0 + b.objective.abs()),
                    "strengthened {} vs oracle {}", a.objective, b.objective
                );
                prop_assert_eq!(a.status, b.status, "status diverges");
            }
            (Err(a), Err(b)) => prop_assert!(
                a.is_infeasible() == b.is_infeasible(),
                "verdicts diverge: strengthened {a:?} vs oracle {b:?}"
            ),
            (a, b) => prop_assert!(false, "strengthened {a:?} vs oracle {b:?}"),
        }
    }

    /// Dual-vs-primal agreement on random bounded LPs: a warm re-solve of
    /// a bound-tightened program from the base optimum's basis (the dual
    /// simplex path when the old vertex went primal infeasible) must agree
    /// with a cold primal solve — same objective, a feasible solution, and
    /// the same infeasible/unbounded classification.
    #[test]
    fn dual_warm_resolve_agrees_with_cold_on_tightened_lps(
        p in random_program(),
        pick in any::<u8>(),
    ) {
        let mut base = to_model(&p, true);
        base.set_presolve(false);
        let Ok(first) = base.solve() else { return Ok(()) };
        let Some(basis) = first.root_basis.clone() else { return Ok(()) };
        let q = tightened(&p, pick);
        let mut tight = to_model(&q, true);
        tight.set_presolve(false);
        let warm = WarmStart { basis: Some(basis), incumbent: None, var_names: None };
        let warm_sol = tight.solve_warm(Some(&warm));
        let cold_sol = tight.solve();
        assert_warm_agrees_with_cold(&q, &warm_sol, &cold_sol)?;
    }

    /// Same agreement through the full branch-and-bound: every node of the
    /// warm-started tree re-solves from its parent basis via the dual
    /// simplex, and the incumbent must still match the cold search's.
    #[test]
    fn dual_warm_resolve_agrees_with_cold_on_tightened_milps(
        p in random_program(),
        pick in any::<u8>(),
    ) {
        let base = to_model(&p, false);
        let Ok(first) = base.solve() else { return Ok(()) };
        let Some(basis) = first.root_basis.clone() else { return Ok(()) };
        let q = tightened(&p, pick);
        let tight = to_model(&q, false);
        let warm = WarmStart { basis: Some(basis), incumbent: None, var_names: None };
        let warm_sol = tight.solve_warm(Some(&warm));
        let cold_sol = tight.solve();
        assert_warm_agrees_with_cold(&q, &warm_sol, &cold_sol)?;
    }

    /// Two solves of the same model in the same process are bit-identical
    /// in every counter and value — cuts, presolve, and best-first search
    /// hold no hidden global state.
    #[test]
    fn repeated_solves_are_bit_identical(p in random_program()) {
        let m = to_model(&p, false);
        let first = m.solve().map(|s| solution_bits(&s));
        let second = m.solve().map(|s| solution_bits(&s));
        match (&first, &second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "re-solve diverged"),
            (Err(a), Err(b)) => prop_assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b)
            ),
            (a, b) => prop_assert!(false, "re-solve verdict changed: {a:?} vs {b:?}"),
        }
    }
}

/// All-binary restriction of [`random_program`], small enough to verify
/// cuts against an exhaustive 0/1 enumeration.
fn binary_program() -> impl Strategy<Value = RandomProgram> {
    random_program().prop_map(|mut p| {
        for v in &mut p.vars {
            v.0 = 1;
            v.2 = true;
        }
        p
    })
}

/// A maximally degenerate MILP — many tied rows pinning the same vertex —
/// whose LP relaxations stall Dantzig pricing into the Bland fallback.
/// The solve must terminate at the proven optimum (no cycling) even with
/// presolve and cuts active.
#[test]
fn degenerate_milp_does_not_cycle_under_cuts() {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..6).map(|i| m.add_binary(format!("d{i}"), 1.0)).collect();
    // Every pair sums to at most 1 (a clique), stated redundantly several
    // times so the vertex x = 0 is massively degenerate.
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            m.add_constraint(vec![(vars[i], 1.0), (vars[j], 1.0)], Cmp::Le, 1.0);
            m.add_constraint(vec![(vars[i], 2.0), (vars[j], 2.0)], Cmp::Le, 2.0);
        }
    }
    m.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Le, 1.0);
    let sol = m.solve().expect("degenerate clique model solves");
    assert_eq!(sol.status, milp::Status::Optimal);
    assert!(!sol.truncated);
    assert!((sol.objective - 1.0).abs() < 1e-6);
}

/// Anti-cycling regression for the dual simplex: re-solving a maximally
/// dual-degenerate tightening — every pair row turns infeasible by the
/// same amount, so the leaving-row choice ties across the whole basis —
/// must terminate at the proven optimum via the Bland fallback, and must
/// actually take dual pivots (the warm basis is dual feasible but primal
/// infeasible, so a silent cold restart would be a regression).
#[test]
fn dual_degenerate_resolve_does_not_cycle() {
    let n = 6usize;
    let build = |rhs: f64| {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("t{i}"), 0.0, 1.0, 1.0, false))
            .collect();
        // Every pair twice (redundantly), so both the relaxed optimum
        // (all ones, rhs = 2) and the tightened one (all halves, rhs = 1)
        // are massively degenerate vertices.
        for i in 0..n {
            for j in (i + 1)..n {
                m.add_constraint(vec![(vars[i], 1.0), (vars[j], 1.0)], Cmp::Le, rhs);
                m.add_constraint(vec![(vars[i], 2.0), (vars[j], 2.0)], Cmp::Le, 2.0 * rhs);
            }
        }
        m.set_presolve(false);
        m
    };
    let base = build(2.0).solve().expect("relaxed pairing model solves");
    assert!((base.objective - n as f64).abs() < 1e-6);
    let basis = base
        .root_basis
        .clone()
        .expect("sparse solve exports a basis");

    let tight = build(1.0);
    let warm = WarmStart {
        basis: Some(basis),
        incumbent: None,
        var_names: None,
    };
    let warm_sol = tight
        .solve_warm(Some(&warm))
        .expect("tightened re-solve terminates");
    let cold_sol = tight.solve().expect("tightened cold solve terminates");
    assert_eq!(warm_sol.status, milp::Status::Optimal);
    assert!(!warm_sol.truncated, "dual walk stalled into truncation");
    assert!(
        (warm_sol.objective - cold_sol.objective).abs() <= 1e-6,
        "warm {} vs cold {}",
        warm_sol.objective,
        cold_sol.objective
    );
    assert!((warm_sol.objective - n as f64 / 2.0).abs() < 1e-6);
    assert!(warm_sol.warm_used, "warm basis was not adopted");
    assert!(
        warm_sol.dual_pivots > 0,
        "tightened re-solve took no dual pivots — the dual path never ran"
    );
}

/// Builds the canonicalized seed placement model (the Eq. 3 model of the
/// first cut round) for one kernel.
fn kernel_placement_model(kernel: &hls::Kernel, opts: &FlowOptions) -> Model {
    let g = kernel.seeded_graph();
    let synth = synthesize(&g, opts.k).expect("kernel synthesizes");
    let map = map_lut_edges(&g, &synth);
    let timing = TimingGraph::build(&g, &synth, &map);
    let penalties = compute_penalties(&g, &timing);
    let cfdfcs = extract_cfdfcs(
        kernel.graph(),
        kernel.back_edges(),
        opts.max_cfdfcs,
        opts.sim_budget,
    );
    let problem = PlacementProblem {
        graph: kernel.graph(),
        timing: &timing,
        penalties: &penalties,
        cfdfcs: &cfdfcs,
        target_levels: opts.target_levels,
        fixed: kernel.back_edges(),
        alpha: opts.alpha,
        beta: opts.beta,
        max_cut_rounds: opts.max_cut_rounds,
        objective: opts.objective,
    };
    let mut model = build_placement_model(&problem).expect("model builds");
    model.canonicalize();
    model
}

/// Dense and sparse agree — and the jobs sweep is bit-identical — on every
/// evaluation kernel's real placement model.
#[test]
fn engines_agree_on_all_kernel_placement_models() {
    let opts = FlowOptions::default();
    for kernel in hls::kernels::all_kernels() {
        let mut model = kernel_placement_model(&kernel, &opts);

        model.set_engine(Engine::DenseTableau);
        model.set_jobs(1);
        let dense = model.solve().expect("dense solves the placement model");
        model.set_engine(Engine::SparseRevised);
        let sparse = model.solve().expect("sparse solves the placement model");

        // Strengthening oracle: presolve + cuts must not move the optimum.
        let mut raw = model.clone();
        raw.set_presolve(false);
        raw.set_cut_rounds(0);
        let oracle = raw.solve().expect("raw model solves");
        if !sparse.truncated && !oracle.truncated {
            assert!(
                (sparse.objective - oracle.objective).abs()
                    <= 1e-6 * (1.0 + oracle.objective.abs()),
                "{}: strengthened {} vs raw oracle {}",
                kernel.name,
                sparse.objective,
                oracle.objective
            );
        }

        // Pivot budgets fire at engine-specific points, so objectives are
        // only comparable when neither search was truncated.
        if !dense.truncated && !sparse.truncated {
            assert!(
                (dense.objective - sparse.objective).abs() <= 1e-6 * (1.0 + dense.objective.abs()),
                "{}: dense {} vs sparse {}",
                kernel.name,
                dense.objective,
                sparse.objective
            );
            assert_eq!(dense.status, sparse.status, "{}: status", kernel.name);
        }

        let reference = solution_bits(&sparse);
        for jobs in [2usize, 8] {
            model.set_jobs(jobs);
            let s = model.solve().expect("sparse re-solves");
            assert_eq!(
                solution_bits(&s),
                reference,
                "{}: jobs={jobs} diverged",
                kernel.name
            );
        }
    }
}

/// Dual-vs-primal agreement on the nine kernels' *real* placement models:
/// re-solving under a tightened clock-period target (`target_levels - 1`,
/// the exact move the iterate loop makes) from the slack target's root
/// basis must match a cold solve — same objective when neither search
/// truncated, same status — and must be bit-identical across the jobs
/// sweep. At least one kernel's warm re-solve must actually take dual
/// pivots, or the dual path silently stopped engaging.
#[test]
fn dual_warm_resolve_agrees_on_all_kernel_placement_models() {
    let base_opts = FlowOptions::default();
    let tight_opts = FlowOptions {
        target_levels: base_opts.target_levels.saturating_sub(1).max(1),
        ..FlowOptions::default()
    };
    let mut any_dual = 0u64;
    for kernel in hls::kernels::all_kernels() {
        let mut base = kernel_placement_model(&kernel, &base_opts);
        base.set_jobs(1);
        let cold_base = base.solve().expect("base placement model solves");
        let Some(basis) = cold_base.root_basis.clone() else {
            continue;
        };
        let warm = WarmStart {
            basis: Some(basis),
            incumbent: None,
            var_names: Some(base.var_names()),
        };

        let mut tight = kernel_placement_model(&kernel, &tight_opts);
        tight.set_jobs(1);
        let warm_sol = tight
            .solve_warm(Some(&warm.remap_to(&tight)))
            .expect("warm re-solve of the tightened model terminates");
        let cold_sol = tight
            .solve()
            .expect("cold solve of the tightened model terminates");
        any_dual += warm_sol.dual_pivots;

        if !warm_sol.truncated && !cold_sol.truncated {
            assert!(
                (warm_sol.objective - cold_sol.objective).abs()
                    <= 1e-6 * (1.0 + cold_sol.objective.abs()),
                "{}: warm {} vs cold {}",
                kernel.name,
                warm_sol.objective,
                cold_sol.objective
            );
            assert_eq!(warm_sol.status, cold_sol.status, "{}: status", kernel.name);
        }

        let reference = solution_bits(&warm_sol);
        for jobs in [2usize, 8] {
            tight.set_jobs(jobs);
            let s = tight
                .solve_warm(Some(&warm.remap_to(&tight)))
                .expect("warm re-solve repeats");
            assert_eq!(
                solution_bits(&s),
                reference,
                "{}: warm re-solve jobs={jobs} diverged",
                kernel.name
            );
        }
    }
    assert!(
        any_dual > 0,
        "no kernel's tightened re-solve took a dual pivot — the path is dead"
    );
}
