//! The umbrella crate's public API surface: every sub-crate is reachable
//! and the common types interoperate.

use frequenz::dataflow::{Graph, PortRef, UnitKind};
use frequenz::lutmap::{map_netlist, MapOptions};
use frequenz::milp::{Cmp, Model, Sense};
use frequenz::netlist::elaborate;

#[test]
fn dataflow_to_netlist_to_luts() {
    let mut g = Graph::new("api");
    let bb = g.add_basic_block("bb0");
    let e = g.add_unit(UnitKind::Entry, "e", bb, 0).unwrap();
    let x = g.add_unit(UnitKind::Exit, "x", bb, 0).unwrap();
    g.connect(PortRef::new(e, 0), PortRef::new(x, 0)).unwrap();
    g.validate().unwrap();

    let mut nl = elaborate(&g).unwrap().netlist;
    nl.optimize();
    let luts = map_netlist(&nl, &MapOptions::default()).unwrap();
    assert!(luts.depth() <= 2);
}

#[test]
fn milp_is_reachable() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_binary("x", 2.0);
    m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
    let sol = m.solve().unwrap();
    assert!(sol.is_one(x));
}

#[test]
fn kernels_are_exported() {
    let ks = frequenz::hls::kernels::all_kernels_small();
    assert_eq!(ks.len(), 9);
    let names: Vec<_> = ks.iter().map(|k| k.name).collect();
    for expect in [
        "insertion_sort",
        "stencil_2d",
        "covariance",
        "gsum",
        "gsumif",
        "gaussian",
        "matrix",
        "mvt",
        "gemver",
    ] {
        assert!(names.contains(&expect), "missing kernel {expect}");
    }
}

#[test]
fn send_sync_bounds_hold() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Graph>();
    assert_send_sync::<frequenz::netlist::Netlist>();
    assert_send_sync::<frequenz::lutmap::LutNetwork>();
    assert_send_sync::<frequenz::milp::Model>();
    assert_send_sync::<frequenz::core::FlowOptions>();
}
