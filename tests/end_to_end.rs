//! Cross-crate integration tests: the full paper flow end to end, spanning
//! the mini-HLS frontend, logic synthesis, LUT mapping, the MILP placer,
//! the iterative loop, the simulator, and the reporting.

use frequenz::core::{measure, optimize_baseline, optimize_iterative, synthesize, FlowOptions};
use frequenz::hls::kernels;
use frequenz::sim::Simulator;

#[test]
fn iterative_flow_is_correct_and_meets_levels_on_gsum() {
    let k = kernels::gsum(32);
    let opts = FlowOptions::default();
    let r = optimize_iterative(k.graph(), k.back_edges(), &opts).expect("flow");
    assert!(r.converged, "achieved {}", r.achieved_levels);
    assert!(r.achieved_levels <= opts.target_levels);

    let mut s = Simulator::new(&r.graph).unwrap();
    let stats = s.run(k.max_cycles * 8).expect("simulates");
    assert_eq!(stats.exit_value, k.expected_exit);
}

#[test]
fn iterative_beats_baseline_on_buffer_count_for_gsumif() {
    let k = kernels::gsumif(32);
    let opts = FlowOptions::default();
    let prev = optimize_baseline(k.graph(), k.back_edges(), &opts).expect("baseline");
    let iter = optimize_iterative(k.graph(), k.back_edges(), &opts).expect("iterative");
    assert!(
        iter.buffers.len() <= prev.buffers.len(),
        "iter {} > prev {}",
        iter.buffers.len(),
        prev.buffers.len()
    );
    // Both remain functionally correct.
    for g in [&prev.graph, &iter.graph] {
        let mut s = Simulator::new(g).unwrap();
        let stats = s.run(k.max_cycles * 8).expect("simulates");
        assert_eq!(stats.exit_value, k.expected_exit);
    }
}

#[test]
fn reports_are_consistent_with_synthesis() {
    let k = kernels::gsum(16);
    let opts = FlowOptions::default();
    let r = optimize_iterative(k.graph(), k.back_edges(), &opts).expect("flow");
    let report = measure(&r.graph, opts.k, k.max_cycles * 8).expect("measure");
    let synth = synthesize(&r.graph, opts.k).expect("synth");
    assert_eq!(report.luts, synth.lut_count());
    assert_eq!(report.ffs, synth.ff_count());
    assert_eq!(report.logic_levels, synth.logic_levels());
    assert!(report.cp_ns >= report.logic_levels as f64 * 0.7);
    assert_eq!(report.buffers, r.buffers.len());
}

#[test]
fn memory_kernel_survives_the_full_flow() {
    let k = kernels::gaussian(5);
    let opts = FlowOptions::default();
    let r = optimize_iterative(k.graph(), k.back_edges(), &opts).expect("flow");
    let mut s = Simulator::new(&r.graph).unwrap();
    s.run(k.max_cycles * 8).expect("simulates");
    for (mem, expected) in &k.expected_mems {
        assert_eq!(s.memory(*mem), expected.as_slice(), "memory contents");
    }
}

#[test]
fn buffering_more_channels_never_breaks_function() {
    // Robustness: buffer *every* channel (legal per the dataflow
    // invariant) and check the kernel still computes correctly.
    let k = kernels::gsum(8);
    let mut g = k.graph().clone();
    for (c, _) in k.graph().channels() {
        g.set_buffer(c, frequenz::dataflow::BufferSpec::FULL);
    }
    let mut s = Simulator::new(&g).unwrap();
    let stats = s.run(k.max_cycles * 16).expect("fully buffered still runs");
    assert_eq!(stats.exit_value, k.expected_exit);
}
