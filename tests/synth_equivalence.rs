//! The parallel synthesis lane must be invisible: the dense-array FlowMap
//! mapper must produce bit-identical LUT networks (and mapping statistics)
//! at any job count, match the retained HashMap reference labeler gate for
//! gate, and seed reuse must never change a mapping — in both cut modes.
//! At the flow level, [`FlowOptions::jobs`] may only change wall clock:
//! buffers, levels, iteration history and every deterministic trace
//! counter must be identical at jobs 1, 2 and 8.

use frequenz::core::{
    optimize_baseline_with_cache, optimize_iterative_with_cache, FlowOptions, FlowTrace, SynthCache,
};
use frequenz::hls::kernels;
use frequenz::lutmap::{map_netlist, map_netlist_reference, map_netlist_with_seed, MapOptions};
use frequenz::netlist::{match_netlists, GateId, Netlist, Origin};
use proptest::prelude::*;

/// One random gate recipe: an operator over earlier pool entries.
#[derive(Debug, Clone)]
enum R {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

fn recipe() -> impl Strategy<Value = R> {
    prop_oneof![
        any::<usize>().prop_map(R::Not),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| R::And(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| R::Or(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| R::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(s, a, b)| R::Mux(s, a, b)),
    ]
}

/// Builds an optimized random netlist with the last three pool gates kept.
fn build(n_inputs: usize, rs: &[R]) -> Netlist {
    let o = Origin::External;
    let mut nl = Netlist::new();
    let mut pool: Vec<GateId> = (0..n_inputs).map(|_| nl.input(o)).collect();
    for r in rs {
        let pick = |i: usize| pool[i % pool.len()];
        let g = match *r {
            R::Not(a) => nl.not(pick(a), o),
            R::And(a, b) => nl.and(pick(a), pick(b), o),
            R::Or(a, b) => nl.or(pick(a), pick(b), o),
            R::Xor(a, b) => nl.xor(pick(a), pick(b), o),
            R::Mux(s, a, b) => nl.mux(pick(s), pick(a), pick(b), o),
        };
        pool.push(g);
    }
    for (i, &g) in pool.iter().rev().take(3).enumerate() {
        nl.add_keep(g, format!("out{i}"));
    }
    nl.optimize();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Jobs sweep at the mapper level: identical LUT networks *and*
    /// identical mapping statistics (labels computed/reused, LUTs packed)
    /// at every job count, in both cut modes, against the reference oracle.
    #[test]
    fn mapper_is_bit_identical_across_jobs(
        n_inputs in 1usize..6,
        rs in prop::collection::vec(recipe(), 1..60),
        k in 4usize..7,
        area_recovery in any::<bool>(),
    ) {
        let nl = build(n_inputs, &rs);
        let reference = map_netlist_reference(
            &nl,
            &MapOptions { k, area_recovery, jobs: 1 },
        ).expect("acyclic");
        let mut stats1 = None;
        for jobs in [1usize, 2, 8] {
            let opts = MapOptions { k, area_recovery, jobs };
            let (net, _, stats) = map_netlist_with_seed(&nl, &opts, None).expect("acyclic");
            prop_assert!(
                net.bit_identical(&reference),
                "jobs={jobs}: dense mapper diverged from the reference"
            );
            match &stats1 {
                None => stats1 = Some(stats),
                Some(s1) => prop_assert_eq!(
                    &stats, s1,
                    "jobs={}: mapping statistics diverged", jobs
                ),
            }
        }
    }

    /// Seed reuse is a pure time optimization: a self-matched seeded remap
    /// returns the identical network and packs the same LUT count, at any
    /// job count and in both cut modes — and actually reuses labels.
    #[test]
    fn seed_reuse_is_invisible(
        n_inputs in 1usize..6,
        rs in prop::collection::vec(recipe(), 1..60),
        k in 4usize..7,
        area_recovery in any::<bool>(),
    ) {
        let nl = build(n_inputs, &rs);
        let opts = MapOptions { k, area_recovery, jobs: 1 };
        let (fresh, seed, fresh_stats) =
            map_netlist_with_seed(&nl, &opts, None).expect("acyclic");
        let matching = match_netlists(&nl, &nl);
        for jobs in [1usize, 2, 8] {
            let opts = MapOptions { k, area_recovery, jobs };
            let (seeded, _, stats) =
                map_netlist_with_seed(&nl, &opts, Some((&seed, &matching))).expect("acyclic");
            prop_assert!(
                seeded.bit_identical(&fresh),
                "jobs={jobs}: seeded remap diverged from the fresh mapping"
            );
            prop_assert_eq!(stats.luts_packed, fresh_stats.luts_packed);
            prop_assert_eq!(
                stats.labels_reused + stats.labels_computed,
                fresh_stats.labels_reused + fresh_stats.labels_computed,
                "total label decisions must not depend on seeding"
            );
            if fresh.num_luts() > 0 {
                prop_assert!(
                    stats.labels_reused > 0,
                    "self-matched seed reused nothing — the reuse path is dead"
                );
            }
        }
    }

    /// `map_netlist` (the plain entry point) agrees with the seeded entry
    /// point it wraps, at every job count.
    #[test]
    fn plain_entry_point_matches_seeded(
        n_inputs in 1usize..6,
        rs in prop::collection::vec(recipe(), 1..40),
        k in 4usize..7,
    ) {
        let nl = build(n_inputs, &rs);
        for jobs in [1usize, 2, 8] {
            let opts = MapOptions { k, area_recovery: true, jobs };
            let plain = map_netlist(&nl, &opts).expect("acyclic");
            let (seeded, _, _) = map_netlist_with_seed(&nl, &opts, None).expect("acyclic");
            prop_assert!(plain.bit_identical(&seeded));
        }
    }
}

/// Reduced flow options (the `incremental_equivalence` discipline): small
/// budgets, no slack matching, a single CFDFC — jobs invariance is about
/// the synthesis lane, not the placer or the simulator.
fn test_opts(jobs: usize) -> FlowOptions {
    FlowOptions {
        max_iterations: 3,
        sim_budget: 10_000,
        max_cfdfcs: 1,
        max_cut_rounds: 4,
        slack_matching: false,
        jobs,
        ..FlowOptions::default()
    }
}

/// The deterministic (jobs-invariant) counters of a trace. `synth_jobs`
/// is deliberately absent: it records the configured pool width.
fn counters(t: &FlowTrace) -> [u64; 10] {
    [
        t.cache_hits,
        t.cache_misses,
        t.labels_reused,
        t.labels_computed,
        t.incr_synths,
        t.full_synths,
        t.dirty_bbs,
        t.clean_bbs,
        t.par_unit_tasks,
        t.par_pack_tasks,
    ]
}

/// Both flows on every (reduced) kernel: jobs 2 and 8 must reproduce the
/// jobs=1 outcome bit for bit — buffers, levels, iteration history, and
/// every deterministic trace counter.
#[test]
fn flow_outcome_is_jobs_invariant() {
    let handles: Vec<_> = kernels::all_kernels_small()
        .into_iter()
        .map(|k| {
            std::thread::spawn(move || {
                let iter1 = optimize_iterative_with_cache(
                    k.graph(),
                    k.back_edges(),
                    &test_opts(1),
                    &SynthCache::new(),
                )
                .expect("iterative flow");
                let prev1 = optimize_baseline_with_cache(
                    k.graph(),
                    k.back_edges(),
                    &test_opts(1),
                    &SynthCache::new(),
                )
                .expect("baseline flow");
                for jobs in [2usize, 8] {
                    let iterj = optimize_iterative_with_cache(
                        k.graph(),
                        k.back_edges(),
                        &test_opts(jobs),
                        &SynthCache::new(),
                    )
                    .expect("iterative flow");
                    assert_eq!(iterj.buffers, iter1.buffers, "{}: jobs={jobs}", k.name);
                    assert_eq!(iterj.achieved_levels, iter1.achieved_levels, "{}", k.name);
                    assert_eq!(iterj.iterations, iter1.iterations, "{}", k.name);
                    assert_eq!(
                        counters(&iterj.trace),
                        counters(&iter1.trace),
                        "{}: iterative trace counters diverged at jobs={jobs}",
                        k.name
                    );
                    assert_eq!(iterj.trace.synth_jobs, jobs, "{}", k.name);
                    let prevj = optimize_baseline_with_cache(
                        k.graph(),
                        k.back_edges(),
                        &test_opts(jobs),
                        &SynthCache::new(),
                    )
                    .expect("baseline flow");
                    assert_eq!(prevj.buffers, prev1.buffers, "{}: jobs={jobs}", k.name);
                    assert_eq!(prevj.achieved_levels, prev1.achieved_levels, "{}", k.name);
                    assert_eq!(
                        counters(&prevj.trace),
                        counters(&prev1.trace),
                        "{}: baseline trace counters diverged at jobs={jobs}",
                        k.name
                    );
                    assert!(
                        prevj.trace.par_unit_tasks > 0,
                        "{}: baseline characterized no units",
                        k.name
                    );
                }
                k.name
            })
        })
        .collect();
    for h in handles {
        h.join().expect("kernel thread");
    }
}
