//! Engine-equivalence suite for the simulator: the event-driven scheduler
//! ([`sim::SimEngine::EventDriven`], the default) and the compiled bytecode
//! engine ([`sim::SimEngine::Compiled`]) must both agree *bit for bit* with
//! the full-sweep oracle ([`sim::SimEngine::FullSweep`]) — same cycles, exit
//! values, per-channel transfer/stall counters, memory contents, and error
//! cases — on randomized DFGs and on all nine evaluation kernels. The
//! parallel slack-matching pass built on top must additionally pick
//! identical buffer sets at any job count.

use frequenz::core::{slack_match, SlackOptions};
use frequenz::dataflow::{BufferSpec, Graph, OpKind, PortRef, UnitKind};
use frequenz::hls::kernels;
use frequenz::sim::{RunStats, SimEngine, SimError, Simulator};
use proptest::prelude::*;

const ENGINES: [SimEngine; 3] = [
    SimEngine::FullSweep,
    SimEngine::EventDriven,
    SimEngine::Compiled,
];

/// Everything externally observable about one finished (or failed) run.
type Fingerprint = (
    Result<RunStats, SimError>,
    u64,           // elapsed cycles (also meaningful after errors)
    Vec<u64>,      // per-channel transfers
    Vec<u64>,      // per-channel stalls
    Vec<Vec<u64>>, // memory contents
);

fn fingerprint(g: &Graph, engine: SimEngine, args: &[u64], budget: u64) -> Fingerprint {
    let mut s = Simulator::with_engine(g, engine).expect("valid graph constructs");
    for (i, &v) in args.iter().enumerate() {
        s.set_arg(i as u8, v);
    }
    let res = s.run(budget);
    (
        res,
        s.cycle(),
        g.channels().map(|(c, _)| s.transfers(c)).collect(),
        g.channels().map(|(c, _)| s.stalls(c)).collect(),
        g.memories().map(|(m, _)| s.memory(m).to_vec()).collect(),
    )
}

/// Runs all three engines and asserts pairwise bit-identity against the
/// full-sweep oracle; returns the oracle fingerprint for further checks.
fn assert_engines_identical(g: &Graph, args: &[u64], budget: u64, label: &str) -> Fingerprint {
    let sweep = fingerprint(g, SimEngine::FullSweep, args, budget);
    for engine in [SimEngine::EventDriven, SimEngine::Compiled] {
        let got = fingerprint(g, engine, args, budget);
        assert_eq!(got, sweep, "{label}: {engine:?} diverged from FullSweep");
    }
    sweep
}

/// Builds a pipelined operator chain ending in an [`UnitKind::Exit`], with
/// buffers sprinkled on arbitrary channels: `ops` picks the operators
/// (including latency>0 multiplies, exercising the pipeline registers) and
/// `bufs` picks (channel, buffer kind) pairs.
fn sim_chain(ops: &[u8], bufs: &[u16]) -> Graph {
    let mut g = Graph::new("prop");
    let bbs = [g.add_basic_block("bb0"), g.add_basic_block("bb1")];
    let a0 = g
        .add_unit(UnitKind::Argument { index: 0 }, "a0", bbs[0], 8)
        .unwrap();
    let mut prev = PortRef::new(a0, 0);
    let mut prev_width = 8u16;
    for (i, &op) in ops.iter().enumerate() {
        let bb = bbs[i % 2];
        let kind = match op % 8 {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Mul, // latency > 0: exercises the Pipe state
            3 => OpKind::Or,
            4 => OpKind::Xor,
            5 => OpKind::Eq,
            6 => OpKind::Ge,
            _ => OpKind::And,
        };
        let width = prev_width;
        let out_width = match kind {
            OpKind::Eq | OpKind::Ge => 1,
            _ => width,
        };
        let arg = g
            .add_unit(
                UnitKind::Argument {
                    index: (i + 1) as u8,
                },
                format!("a{}", i + 1),
                bb,
                width,
            )
            .unwrap();
        let u = g
            .add_unit(UnitKind::Operator(kind), format!("op{i}"), bb, width)
            .unwrap();
        g.connect(prev, PortRef::new(u, 0)).unwrap();
        g.connect(PortRef::new(arg, 0), PortRef::new(u, 1)).unwrap();
        prev = PortRef::new(u, 0);
        prev_width = out_width;
    }
    let exit = g
        .add_unit(UnitKind::Exit, "exit", bbs[ops.len() % 2], prev_width)
        .unwrap();
    g.connect(prev, PortRef::new(exit, 0)).unwrap();
    g.validate().unwrap();
    let channels: Vec<_> = g.channels().map(|(c, _)| c).collect();
    for &b in bufs {
        let c = channels[b as usize % channels.len()];
        let spec = match b % 3 {
            0 => BufferSpec::FULL,
            1 => BufferSpec::OPAQUE,
            _ => BufferSpec::TRANSPARENT,
        };
        g.set_buffer(c, spec);
    }
    g
}

/// `gsum(n)` with extra buffers on arbitrary channels: loops, merges,
/// branches, and memory ports under randomized backpressure. Whatever the
/// outcome — completion, deadlock, timeout — all engines must agree.
fn buffered_gsum(n: usize, bufs: &[u16]) -> Graph {
    let k = kernels::gsum(n);
    let mut g = k.seeded_graph();
    let channels: Vec<_> = g.channels().map(|(c, _)| c).collect();
    for &b in bufs {
        let c = channels[b as usize % channels.len()];
        let spec = match b % 3 {
            0 => BufferSpec::FULL,
            1 => BufferSpec::OPAQUE,
            _ => BufferSpec::TRANSPARENT,
        };
        g.set_buffer(c, spec);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random pipelined chains with random buffers and random argument
    /// vectors: bit-identical runs across all three engines.
    #[test]
    fn engines_agree_on_random_dfgs(
        ops in prop::collection::vec(any::<u8>(), 1..12),
        bufs in prop::collection::vec(any::<u16>(), 0..8),
        args in prop::collection::vec(any::<u64>(), 13),
    ) {
        let g = sim_chain(&ops, &bufs);
        let sweep = fingerprint(&g, SimEngine::FullSweep, &args, 10_000);
        for engine in [SimEngine::EventDriven, SimEngine::Compiled] {
            let got = fingerprint(&g, engine, &args, 10_000);
            prop_assert_eq!(&got, &sweep, "{:?} diverged", engine);
        }
    }

    /// Random loop graphs (gsum + arbitrary extra buffers): bit-identical
    /// runs, including deadlocks or timeouts the extra buffers may cause.
    #[test]
    fn engines_agree_on_random_buffered_loops(
        n in 2usize..24,
        bufs in prop::collection::vec(any::<u16>(), 0..6),
    ) {
        let g = buffered_gsum(n, &bufs);
        let sweep = fingerprint(&g, SimEngine::FullSweep, &[], 50_000);
        for engine in [SimEngine::EventDriven, SimEngine::Compiled] {
            let got = fingerprint(&g, engine, &[], 50_000);
            prop_assert_eq!(&got, &sweep, "{:?} diverged", engine);
        }
    }
}

/// All nine evaluation kernels: bit-identical engines, and the oracle
/// still computes the expected results.
#[test]
fn engines_bit_identical_on_all_kernels() {
    for k in kernels::all_kernels() {
        let g = k.seeded_graph();
        let sweep = assert_engines_identical(&g, &[], k.max_cycles * 4, k.name);
        let stats = sweep.0.expect("kernel completes");
        assert_eq!(stats.exit_value, k.expected_exit, "{}: exit value", k.name);
        for (mem, expected) in &k.expected_mems {
            assert_eq!(
                &sweep.4[mem.index()],
                expected,
                "{}: memory {mem} contents",
                k.name
            );
        }
    }
}

/// Unseeded kernels (no back-edge buffers) fail identically: combinational
/// loops and deadlocks are engine-invariant error cases.
#[test]
fn engines_agree_on_unseeded_kernel_failures() {
    for k in kernels::all_kernels_small() {
        let _ = assert_engines_identical(k.graph(), &[], k.max_cycles, k.name);
    }
}

/// A data cycle through two adders never settles: all engines must call
/// it [`SimError::NoFixpoint`] on the same cycle.
#[test]
fn no_fixpoint_is_engine_invariant() {
    let mut g = Graph::new("osc");
    let bb = g.add_basic_block("bb0");
    let a0 = g
        .add_unit(UnitKind::Argument { index: 0 }, "a0", bb, 8)
        .unwrap();
    let a1 = g
        .add_unit(UnitKind::Argument { index: 1 }, "a1", bb, 8)
        .unwrap();
    let u = g
        .add_unit(UnitKind::Operator(OpKind::Add), "u", bb, 8)
        .unwrap();
    let v = g
        .add_unit(UnitKind::Operator(OpKind::Add), "v", bb, 8)
        .unwrap();
    g.connect(PortRef::new(a0, 0), PortRef::new(u, 0)).unwrap();
    g.connect(PortRef::new(v, 0), PortRef::new(u, 1)).unwrap();
    g.connect(PortRef::new(u, 0), PortRef::new(v, 0)).unwrap();
    g.connect(PortRef::new(a1, 0), PortRef::new(v, 1)).unwrap();
    g.validate().unwrap();
    let sweep = assert_engines_identical(&g, &[1, 1], 100, "osc");
    assert_eq!(sweep.0, Err(SimError::NoFixpoint));
}

/// An out-of-range load faults identically under all engines.
#[test]
fn addr_out_of_bounds_is_engine_invariant() {
    let mut g = Graph::new("oob");
    let bb = g.add_basic_block("bb0");
    let mem = g.add_memory("m", 4, 8, vec![1, 2, 3, 4]);
    let a = g
        .add_unit(UnitKind::Argument { index: 0 }, "addr", bb, 8)
        .unwrap();
    let ld = g.add_unit(UnitKind::Load { mem }, "ld", bb, 8).unwrap();
    let x = g.add_unit(UnitKind::Exit, "x", bb, 8).unwrap();
    g.connect(PortRef::new(a, 0), PortRef::new(ld, 0)).unwrap();
    g.connect(PortRef::new(ld, 0), PortRef::new(x, 0)).unwrap();
    g.validate().unwrap();
    let sweep = assert_engines_identical(&g, &[99], 100, "oob");
    assert!(
        matches!(
            sweep.0,
            Err(SimError::AddrOutOfBounds {
                addr: 99,
                size: 4,
                ..
            })
        ),
        "got {:?}",
        sweep.0
    );
}

/// Truncated runs (timeout) leave identical counters behind.
#[test]
fn timeouts_are_engine_invariant() {
    let k = kernels::gsum(64);
    let g = k.seeded_graph();
    for budget in [1, 7, 50] {
        let sweep = assert_engines_identical(&g, &[], budget, "gsum(64)");
        assert_eq!(sweep.0, Err(SimError::Timeout { max_cycles: budget }));
    }
}

/// `run(max_cycles)` boundary, pinned for every engine: a circuit that
/// finishes on cycle `N` completes under a budget of exactly `N`, times out
/// under `N - 1`, and a zero budget times out before the first step.
#[test]
fn run_budget_boundary_is_exact() {
    let k = kernels::gsum(8);
    let g = k.seeded_graph();
    // Reference cycle count from an effectively unbounded run.
    let n = fingerprint(&g, SimEngine::FullSweep, &[], u64::MAX)
        .0
        .expect("gsum(8) completes")
        .cycles;
    assert!(n > 1, "kernel must take more than one cycle");
    for engine in ENGINES {
        let mut exact = Simulator::with_engine(&g, engine).unwrap();
        let stats = exact.run(n).expect("budget == completion cycle is enough");
        assert_eq!(stats.cycles, n, "{engine:?}: cycles at exact budget");

        let mut short = Simulator::with_engine(&g, engine).unwrap();
        assert_eq!(
            short.run(n - 1),
            Err(SimError::Timeout { max_cycles: n - 1 }),
            "{engine:?}: one cycle short must time out"
        );
        assert_eq!(short.cycle(), n - 1, "{engine:?}: stops at the budget");

        let mut zero = Simulator::with_engine(&g, engine).unwrap();
        assert_eq!(
            zero.run(0),
            Err(SimError::Timeout { max_cycles: 0 }),
            "{engine:?}: zero budget"
        );
        assert_eq!(zero.cycle(), 0, "{engine:?}: zero budget runs no cycles");
    }
}

/// Feeding an unvalidated graph (dangling ports) must yield a structured
/// [`SimError::UnconnectedPort`] from every engine's constructor — never a
/// panic.
#[test]
fn unvalidated_graph_is_rejected_with_structured_error() {
    let mut g = Graph::new("dangling");
    let bb = g.add_basic_block("bb0");
    let a = g
        .add_unit(UnitKind::Argument { index: 0 }, "a", bb, 8)
        .unwrap();
    let u = g
        .add_unit(UnitKind::Operator(OpKind::Add), "u", bb, 8)
        .unwrap();
    let x = g.add_unit(UnitKind::Exit, "x", bb, 8).unwrap();
    g.connect(PortRef::new(a, 0), PortRef::new(u, 0)).unwrap();
    g.connect(PortRef::new(u, 0), PortRef::new(x, 0)).unwrap();
    // Deliberately no g.validate(): u's second input port is dangling.
    for engine in ENGINES {
        match Simulator::with_engine(&g, engine) {
            Err(SimError::UnconnectedPort { port, output, .. }) => {
                assert_eq!((port, output), (1, false), "{engine:?}: wrong port");
            }
            other => panic!("{engine:?}: expected UnconnectedPort, got {other:?}"),
        }
    }
}

/// The parallel slack-matching pass picks the same buffers at any job
/// count: trials are evaluated concurrently but applied in fixed candidate
/// order. Also sweeps both simulation engines usable inside the pass.
#[test]
fn slack_matching_jobs_sweep_is_bit_identical() {
    for k in kernels::all_kernels_small() {
        let seed: Vec<_> = k.back_edges().to_vec();
        for engine in [SimEngine::EventDriven, SimEngine::Compiled] {
            let reference = slack_match(
                k.graph(),
                &seed,
                &SlackOptions {
                    sim_budget: k.max_cycles * 4,
                    jobs: 1,
                    engine,
                    ..SlackOptions::default()
                },
            )
            .expect("slack matching succeeds");
            for jobs in [2usize, 8] {
                let got = slack_match(
                    k.graph(),
                    &seed,
                    &SlackOptions {
                        sim_budget: k.max_cycles * 4,
                        jobs,
                        engine,
                        ..SlackOptions::default()
                    },
                )
                .expect("slack matching succeeds");
                assert_eq!(
                    got, reference,
                    "{}: jobs={jobs} engine={engine:?} diverged",
                    k.name
                );
            }
        }
    }
}

/// The two slack engines must choose the same buffer set: simulation is
/// bit-identical, so the greedy pass sees identical cycle counts.
#[test]
fn slack_matching_engines_agree() {
    for k in kernels::all_kernels_small() {
        let seed: Vec<_> = k.back_edges().to_vec();
        let mut picks = Vec::new();
        for engine in [SimEngine::EventDriven, SimEngine::Compiled] {
            let opts = SlackOptions {
                sim_budget: k.max_cycles * 4,
                jobs: 2,
                engine,
                ..SlackOptions::default()
            };
            picks.push(slack_match(k.graph(), &seed, &opts).expect("slack matching succeeds"));
        }
        assert_eq!(
            picks[0], picks[1],
            "{}: engines picked different buffers",
            k.name
        );
    }
}
