//! Engine-equivalence suite for the simulator: the event-driven scheduler
//! ([`sim::SimEngine::EventDriven`], the default) must agree *bit for bit*
//! with the full-sweep oracle ([`sim::SimEngine::FullSweep`]) — same
//! cycles, exit values, per-channel transfer/stall counters, memory
//! contents, and error cases — on randomized DFGs and on all nine
//! evaluation kernels. The parallel slack-matching pass built on top must
//! additionally pick identical buffer sets at any job count.

use frequenz::core::{slack_match, SlackOptions};
use frequenz::dataflow::{BufferSpec, Graph, OpKind, PortRef, UnitKind};
use frequenz::hls::kernels;
use frequenz::sim::{RunStats, SimEngine, SimError, Simulator};
use proptest::prelude::*;

/// Everything externally observable about one finished (or failed) run.
type Fingerprint = (
    Result<RunStats, SimError>,
    u64,           // elapsed cycles (also meaningful after errors)
    Vec<u64>,      // per-channel transfers
    Vec<u64>,      // per-channel stalls
    Vec<Vec<u64>>, // memory contents
);

fn fingerprint(g: &Graph, engine: SimEngine, args: &[u64], budget: u64) -> Fingerprint {
    let mut s = Simulator::with_engine(g, engine);
    for (i, &v) in args.iter().enumerate() {
        s.set_arg(i as u8, v);
    }
    let res = s.run(budget);
    (
        res,
        s.cycle(),
        g.channels().map(|(c, _)| s.transfers(c)).collect(),
        g.channels().map(|(c, _)| s.stalls(c)).collect(),
        g.memories().map(|(m, _)| s.memory(m).to_vec()).collect(),
    )
}

fn assert_engines_identical(g: &Graph, args: &[u64], budget: u64, label: &str) {
    let event = fingerprint(g, SimEngine::EventDriven, args, budget);
    let sweep = fingerprint(g, SimEngine::FullSweep, args, budget);
    assert_eq!(event, sweep, "{label}: engines diverged");
}

/// Builds a pipelined operator chain ending in an [`UnitKind::Exit`], with
/// buffers sprinkled on arbitrary channels: `ops` picks the operators
/// (including latency>0 multiplies, exercising the pipeline registers) and
/// `bufs` picks (channel, buffer kind) pairs.
fn sim_chain(ops: &[u8], bufs: &[u16]) -> Graph {
    let mut g = Graph::new("prop");
    let bbs = [g.add_basic_block("bb0"), g.add_basic_block("bb1")];
    let a0 = g
        .add_unit(UnitKind::Argument { index: 0 }, "a0", bbs[0], 8)
        .unwrap();
    let mut prev = PortRef::new(a0, 0);
    let mut prev_width = 8u16;
    for (i, &op) in ops.iter().enumerate() {
        let bb = bbs[i % 2];
        let kind = match op % 8 {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Mul, // latency > 0: exercises the Pipe state
            3 => OpKind::Or,
            4 => OpKind::Xor,
            5 => OpKind::Eq,
            6 => OpKind::Ge,
            _ => OpKind::And,
        };
        let width = prev_width;
        let out_width = match kind {
            OpKind::Eq | OpKind::Ge => 1,
            _ => width,
        };
        let arg = g
            .add_unit(
                UnitKind::Argument {
                    index: (i + 1) as u8,
                },
                format!("a{}", i + 1),
                bb,
                width,
            )
            .unwrap();
        let u = g
            .add_unit(UnitKind::Operator(kind), format!("op{i}"), bb, width)
            .unwrap();
        g.connect(prev, PortRef::new(u, 0)).unwrap();
        g.connect(PortRef::new(arg, 0), PortRef::new(u, 1)).unwrap();
        prev = PortRef::new(u, 0);
        prev_width = out_width;
    }
    let exit = g
        .add_unit(UnitKind::Exit, "exit", bbs[ops.len() % 2], prev_width)
        .unwrap();
    g.connect(prev, PortRef::new(exit, 0)).unwrap();
    g.validate().unwrap();
    let channels: Vec<_> = g.channels().map(|(c, _)| c).collect();
    for &b in bufs {
        let c = channels[b as usize % channels.len()];
        let spec = match b % 3 {
            0 => BufferSpec::FULL,
            1 => BufferSpec::OPAQUE,
            _ => BufferSpec::TRANSPARENT,
        };
        g.set_buffer(c, spec);
    }
    g
}

/// `gsum(n)` with extra buffers on arbitrary channels: loops, merges,
/// branches, and memory ports under randomized backpressure. Whatever the
/// outcome — completion, deadlock, timeout — both engines must agree.
fn buffered_gsum(n: usize, bufs: &[u16]) -> Graph {
    let k = kernels::gsum(n);
    let mut g = k.seeded_graph();
    let channels: Vec<_> = g.channels().map(|(c, _)| c).collect();
    for &b in bufs {
        let c = channels[b as usize % channels.len()];
        let spec = match b % 3 {
            0 => BufferSpec::FULL,
            1 => BufferSpec::OPAQUE,
            _ => BufferSpec::TRANSPARENT,
        };
        g.set_buffer(c, spec);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random pipelined chains with random buffers: bit-identical runs.
    #[test]
    fn engines_agree_on_random_dfgs(
        ops in prop::collection::vec(any::<u8>(), 1..12),
        bufs in prop::collection::vec(any::<u16>(), 0..8),
        args in prop::collection::vec(any::<u64>(), 13),
    ) {
        let g = sim_chain(&ops, &bufs);
        let event = fingerprint(&g, SimEngine::EventDriven, &args, 10_000);
        let sweep = fingerprint(&g, SimEngine::FullSweep, &args, 10_000);
        prop_assert_eq!(event, sweep);
    }

    /// Random loop graphs (gsum + arbitrary extra buffers): bit-identical
    /// runs, including deadlocks or timeouts the extra buffers may cause.
    #[test]
    fn engines_agree_on_random_buffered_loops(
        n in 2usize..24,
        bufs in prop::collection::vec(any::<u16>(), 0..6),
    ) {
        let g = buffered_gsum(n, &bufs);
        let event = fingerprint(&g, SimEngine::EventDriven, &[], 50_000);
        let sweep = fingerprint(&g, SimEngine::FullSweep, &[], 50_000);
        prop_assert_eq!(event, sweep);
    }
}

/// All nine evaluation kernels: bit-identical engines, and the event
/// engine still computes the expected results.
#[test]
fn engines_bit_identical_on_all_kernels() {
    for k in kernels::all_kernels() {
        let g = k.seeded_graph();
        let event = fingerprint(&g, SimEngine::EventDriven, &[], k.max_cycles * 4);
        let sweep = fingerprint(&g, SimEngine::FullSweep, &[], k.max_cycles * 4);
        assert_eq!(event, sweep, "{}: engines diverged", k.name);
        let stats = event.0.expect("kernel completes");
        assert_eq!(stats.exit_value, k.expected_exit, "{}: exit value", k.name);
        for (mem, expected) in &k.expected_mems {
            assert_eq!(
                &event.4[mem.index()],
                expected,
                "{}: memory {mem} contents",
                k.name
            );
        }
    }
}

/// Unseeded kernels (no back-edge buffers) fail identically: combinational
/// loops and deadlocks are engine-invariant error cases.
#[test]
fn engines_agree_on_unseeded_kernel_failures() {
    for k in kernels::all_kernels_small() {
        assert_engines_identical(k.graph(), &[], k.max_cycles, k.name);
    }
}

/// A data cycle through two adders never settles: both engines must call
/// it [`SimError::NoFixpoint`] on the same cycle.
#[test]
fn no_fixpoint_is_engine_invariant() {
    let mut g = Graph::new("osc");
    let bb = g.add_basic_block("bb0");
    let a0 = g
        .add_unit(UnitKind::Argument { index: 0 }, "a0", bb, 8)
        .unwrap();
    let a1 = g
        .add_unit(UnitKind::Argument { index: 1 }, "a1", bb, 8)
        .unwrap();
    let u = g
        .add_unit(UnitKind::Operator(OpKind::Add), "u", bb, 8)
        .unwrap();
    let v = g
        .add_unit(UnitKind::Operator(OpKind::Add), "v", bb, 8)
        .unwrap();
    g.connect(PortRef::new(a0, 0), PortRef::new(u, 0)).unwrap();
    g.connect(PortRef::new(v, 0), PortRef::new(u, 1)).unwrap();
    g.connect(PortRef::new(u, 0), PortRef::new(v, 0)).unwrap();
    g.connect(PortRef::new(a1, 0), PortRef::new(v, 1)).unwrap();
    g.validate().unwrap();
    let event = fingerprint(&g, SimEngine::EventDriven, &[1, 1], 100);
    let sweep = fingerprint(&g, SimEngine::FullSweep, &[1, 1], 100);
    assert_eq!(event, sweep);
    assert_eq!(event.0, Err(SimError::NoFixpoint));
}

/// An out-of-range load faults identically under both engines.
#[test]
fn addr_out_of_bounds_is_engine_invariant() {
    let mut g = Graph::new("oob");
    let bb = g.add_basic_block("bb0");
    let mem = g.add_memory("m", 4, 8, vec![1, 2, 3, 4]);
    let a = g
        .add_unit(UnitKind::Argument { index: 0 }, "addr", bb, 8)
        .unwrap();
    let ld = g.add_unit(UnitKind::Load { mem }, "ld", bb, 8).unwrap();
    let x = g.add_unit(UnitKind::Exit, "x", bb, 8).unwrap();
    g.connect(PortRef::new(a, 0), PortRef::new(ld, 0)).unwrap();
    g.connect(PortRef::new(ld, 0), PortRef::new(x, 0)).unwrap();
    g.validate().unwrap();
    let event = fingerprint(&g, SimEngine::EventDriven, &[99], 100);
    let sweep = fingerprint(&g, SimEngine::FullSweep, &[99], 100);
    assert_eq!(event, sweep);
    assert!(
        matches!(
            event.0,
            Err(SimError::AddrOutOfBounds {
                addr: 99,
                size: 4,
                ..
            })
        ),
        "got {:?}",
        event.0
    );
}

/// Truncated runs (timeout) leave identical counters behind.
#[test]
fn timeouts_are_engine_invariant() {
    let k = kernels::gsum(64);
    let g = k.seeded_graph();
    for budget in [1, 7, 50] {
        let event = fingerprint(&g, SimEngine::EventDriven, &[], budget);
        let sweep = fingerprint(&g, SimEngine::FullSweep, &[], budget);
        assert_eq!(event, sweep, "budget {budget}");
        assert_eq!(event.0, Err(SimError::Timeout { max_cycles: budget }));
    }
}

/// The parallel slack-matching pass picks the same buffers at any job
/// count: trials are evaluated concurrently but applied in fixed candidate
/// order.
#[test]
fn slack_matching_jobs_sweep_is_bit_identical() {
    for k in kernels::all_kernels_small() {
        let seed: Vec<_> = k.back_edges().to_vec();
        let reference = slack_match(
            k.graph(),
            &seed,
            &SlackOptions {
                sim_budget: k.max_cycles * 4,
                jobs: 1,
                ..SlackOptions::default()
            },
        );
        for jobs in [2usize, 8] {
            let got = slack_match(
                k.graph(),
                &seed,
                &SlackOptions {
                    sim_budget: k.max_cycles * 4,
                    jobs,
                    ..SlackOptions::default()
                },
            );
            assert_eq!(got, reference, "{}: jobs={jobs} diverged", k.name);
        }
    }
}
