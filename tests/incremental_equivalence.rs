//! Incremental re-synthesis must be invisible: the basis-seeded flow
//! (default [`SynthCache`]) and the forced-full flow
//! ([`SynthCache::forced_full`]) must produce bit-identical [`FlowResult`]s
//! — same buffers, same achieved levels, same per-iteration history — on
//! every circuit. Label reuse is a pure time optimization, never a
//! quality/accuracy trade.

use frequenz::core::{optimize_iterative_with_cache, FlowOptions, FlowResult, SynthCache};
use frequenz::dataflow::{ChannelId, Graph, OpKind, PortRef, UnitKind};
use frequenz::hls::kernels;
use proptest::prelude::*;

/// Reduced options: enough iterations for the basis path to engage, small
/// enough budgets to keep the double-solve (incremental + full) fast. A
/// single CFDFC keeps the MILP small — throughput modelling is irrelevant
/// to synthesis equivalence, and the placer dominates the wall clock
/// otherwise.
fn test_opts() -> FlowOptions {
    FlowOptions {
        max_iterations: 3,
        sim_budget: 10_000,
        max_cfdfcs: 1,
        max_cut_rounds: 4,
        slack_matching: false,
        ..FlowOptions::default()
    }
}

fn run_both(g: &Graph, back_edges: &[ChannelId], opts: &FlowOptions) -> (FlowResult, FlowResult) {
    let incr = optimize_iterative_with_cache(g, back_edges, opts, &SynthCache::new())
        .expect("incremental flow");
    let full = optimize_iterative_with_cache(g, back_edges, opts, &SynthCache::forced_full())
        .expect("full flow");
    (incr, full)
}

/// Builds an acyclic operator chain from `ops`, alternating between two
/// basic blocks so the per-BB fingerprints see cross-BB channels too.
/// Each opcode byte picks the operator; a fresh argument feeds the second
/// input so every stage contributes real logic.
fn op_chain(ops: &[u8]) -> Graph {
    let mut g = Graph::new("prop");
    let bbs = [g.add_basic_block("bb0"), g.add_basic_block("bb1")];
    let a0 = g
        .add_unit(UnitKind::Argument { index: 0 }, "a0", bbs[0], 8)
        .unwrap();
    let mut prev = PortRef::new(a0, 0);
    let mut prev_width = 8u16;
    for (i, &op) in ops.iter().enumerate() {
        let bb = bbs[i % 2];
        let kind = match op % 7 {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::And,
            3 => OpKind::Or,
            4 => OpKind::Xor,
            5 => OpKind::Eq,
            _ => OpKind::Lt,
        };
        // Comparisons narrow the value to 1 bit; widen it back with a
        // second argument through the next binary operator.
        let width = prev_width;
        let out_width = match kind {
            OpKind::Eq | OpKind::Lt => 1,
            _ => width,
        };
        let arg = g
            .add_unit(
                UnitKind::Argument {
                    index: (i + 1) as u8,
                },
                format!("a{}", i + 1),
                bb,
                width,
            )
            .unwrap();
        let u = g
            .add_unit(UnitKind::Operator(kind), format!("op{i}"), bb, width)
            .unwrap();
        g.connect(prev, PortRef::new(u, 0)).unwrap();
        g.connect(PortRef::new(arg, 0), PortRef::new(u, 1)).unwrap();
        prev = PortRef::new(u, 0);
        prev_width = out_width;
    }
    let sink = g
        .add_unit(UnitKind::Sink, "snk", bbs[ops.len() % 2], prev_width)
        .unwrap();
    g.connect(prev, PortRef::new(sink, 0)).unwrap();
    g.validate().unwrap();
    g
}

fn assert_results_identical(kernel: &str, incr: &FlowResult, full: &FlowResult) {
    assert_eq!(
        incr.buffers, full.buffers,
        "{kernel}: buffer placement diverged"
    );
    assert_eq!(
        incr.achieved_levels, full.achieved_levels,
        "{kernel}: achieved levels diverged"
    );
    assert_eq!(incr.converged, full.converged, "{kernel}: convergence flag");
    assert_eq!(
        incr.iterations, full.iterations,
        "{kernel}: iteration history diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random acyclic DFGs: the incremental flow must match the forced-full
    /// flow field for field.
    #[test]
    fn incremental_equals_full_on_random_dfgs(ops in prop::collection::vec(any::<u8>(), 1..10)) {
        let g = op_chain(&ops);
        let opts = test_opts();
        let (incr, full) = run_both(&g, &[], &opts);
        prop_assert_eq!(&incr.buffers, &full.buffers);
        prop_assert_eq!(incr.achieved_levels, full.achieved_levels);
        prop_assert_eq!(incr.converged, full.converged);
        prop_assert_eq!(&incr.iterations, &full.iterations);
    }

    /// Incremental re-synthesis composes with the parallel synthesis lane:
    /// with the worker pools widened the basis-seeded flow still matches
    /// the forced-full flow field for field.
    #[test]
    fn incremental_equals_full_with_parallel_synthesis(
        ops in prop::collection::vec(any::<u8>(), 1..10),
        jobs in 2usize..9,
    ) {
        let g = op_chain(&ops);
        let opts = FlowOptions { jobs, ..test_opts() };
        let (incr, full) = run_both(&g, &[], &opts);
        prop_assert_eq!(&incr.buffers, &full.buffers);
        prop_assert_eq!(incr.achieved_levels, full.achieved_levels);
        prop_assert_eq!(incr.converged, full.converged);
        prop_assert_eq!(&incr.iterations, &full.iterations);
    }
}

/// Cross-iteration MILP warm starts must be invisible, like incremental
/// re-synthesis: a flow run with the warm-start store on produces a
/// bit-identical outcome to one with it off — same buffers, levels, and
/// per-iteration history. Warm starts may only change the *work* (pivots,
/// nodes), never the placement.
#[test]
fn warm_started_flow_equals_cold_on_all_kernels() {
    let kernels = kernels::all_kernels_small();
    let handles: Vec<_> = kernels
        .into_iter()
        .map(|k| {
            std::thread::spawn(move || {
                let warm_opts = test_opts();
                let cold_opts = FlowOptions {
                    milp_warm_start: false,
                    ..test_opts()
                };
                let warm = optimize_iterative_with_cache(
                    k.graph(),
                    k.back_edges(),
                    &warm_opts,
                    &SynthCache::new(),
                )
                .expect("warm flow");
                let cold = optimize_iterative_with_cache(
                    k.graph(),
                    k.back_edges(),
                    &cold_opts,
                    &SynthCache::new(),
                )
                .expect("cold flow");
                (k.name, warm, cold)
            })
        })
        .collect();
    let mut any_warm_hit = false;
    for h in handles {
        let (name, warm, cold) = h.join().expect("kernel thread");
        assert_results_identical(name, &warm, &cold);
        assert_eq!(
            cold.trace.milp_warm_hits, 0,
            "{name}: warm-start-off flow must record no warm hits"
        );
        any_warm_hit |= warm.trace.milp_warm_hits > 0;
    }
    assert!(
        any_warm_hit,
        "no kernel adopted any warm start — the cross-iteration path is dead"
    );
}

/// All nine Table-I kernels (reduced sizes): exact equality of the flow
/// outcome, while the incremental run demonstrably reused labels.
#[test]
fn incremental_equals_full_on_all_kernels() {
    let kernels = kernels::all_kernels_small();
    let handles: Vec<_> = kernels
        .into_iter()
        .map(|k| {
            std::thread::spawn(move || {
                let opts = test_opts();
                let (incr, full) = run_both(k.graph(), k.back_edges(), &opts);
                (k.name, incr, full)
            })
        })
        .collect();
    let mut any_reuse = false;
    for h in handles {
        let (name, incr, full) = h.join().expect("kernel thread");
        assert_results_identical(name, &incr, &full);
        assert_eq!(
            full.trace.labels_reused, 0,
            "{name}: forced-full flow must never reuse labels"
        );
        any_reuse |= incr.trace.labels_reused > 0;
    }
    assert!(
        any_reuse,
        "no kernel reused any FlowMap labels — the incremental path is dead"
    );
}
