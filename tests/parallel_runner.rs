//! Tier-1 regression: the parallel comparison runner must be an invisible
//! optimization — the rows it produces are identical (and identically
//! ordered) whether kernels are compared on one thread or four.

use frequenz_bench::{compare_kernels, KernelComparison};
use frequenz_core::FlowOptions;
use hls::Kernel;

fn small_kernels() -> Vec<Kernel> {
    // Deliberately tiny: this runs under the tier-1 `cargo test` (dev
    // profile) and covers both flows twice per kernel.
    vec![
        hls::kernels::gsum(8),
        hls::kernels::gsumif(8),
        hls::kernels::mvt(3),
    ]
}

/// Everything about a row except wall-clock (which legitimately varies).
fn row_content(c: &KernelComparison) -> impl PartialEq + std::fmt::Debug + use<> {
    (
        c.name,
        c.prev.clone(),
        c.iter.clone(),
        c.iter_iterations,
        c.iter_converged,
        c.cache_hits,
        c.cache_misses,
    )
}

#[test]
fn parallel_and_sequential_rows_are_identical() {
    let kernels = small_kernels();
    let opts = FlowOptions::default();
    let seq = compare_kernels(&kernels, &opts, 1).expect("sequential run succeeds");
    let par = compare_kernels(&kernels, &opts, 4).expect("parallel run succeeds");
    assert_eq!(seq.len(), kernels.len());
    assert_eq!(par.len(), kernels.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(
            s.name, kernels[i].name,
            "row order must follow kernel order"
        );
        assert_eq!(
            row_content(s),
            row_content(p),
            "row {} ({}) differs between --jobs 1 and --jobs 4",
            i,
            s.name
        );
    }
    // The per-kernel synthesis cache must earn its keep on every kernel.
    for row in &par {
        assert!(
            row.cache_hits > 0,
            "{}: no synthesis-cache hits recorded",
            row.name
        );
    }
}
